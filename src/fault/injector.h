#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "net/network.h"
#include "obs/json_writer.h"

namespace bcfl::fault {

/// Turns a `FaultPlan` into the per-round, per-message decisions the
/// protocol layers consult:
///
///  - `net::SimulatedNetwork` calls `FilterMessage` (via the installed
///    fault filter) for drop/duplicate/delay verdicts on miner traffic;
///  - `chain::ConsensusEngine` asks which miners are offline or
///    partitioned, to time out crashed leaders (view change) and to know
///    which replicas fall behind and need catch-up;
///  - `core::BcflCoordinator` asks which owners are offline and whether a
///    submission attempt is lost, driving its deadline/retry machinery.
///
/// All decisions are pure functions of (plan, round, message), so a run
/// under faults is exactly as reproducible as a clean run. The injector
/// records every decision that fired into an executed-schedule log that
/// bcfl_sim exports into metrics.json for triage.
///
/// Thread-safety contract (round engine): `BeginRound` runs on the
/// coordinator thread and the per-round sets it computes are immutable
/// until the next `BeginRound`, so the const queries (`OwnerOffline`,
/// `MinerOffline`, `OwnerExtraDelayUs`, `MinersReachable`) are safe to
/// call from pool workers during the owner fan-out — the fan-out is
/// ordered-after BeginRound by the ParallelFor dispatch. The mutating
/// calls (`DropSubmissionAttempt`, which consumes the round's drop
/// budget, `FilterMessage`, `RecordExecuted`) must stay on the
/// coordinator thread; the round engine keeps them in the canonical-order
/// replay, never in workers.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, uint32_t num_owners, uint32_t num_miners);

  /// Advances the injector to FL round `round` (monotone): recomputes the
  /// crash/partition/slow sets and re-arms per-round submission drops.
  void BeginRound(uint64_t round);

  uint64_t current_round() const { return round_; }
  const FaultPlan& plan() const { return plan_; }

  // --- Owner-side queries (coordinator). -------------------------------
  bool OwnerOffline(uint32_t owner) const {
    return crashed_owners_.count(owner) > 0;
  }
  /// Extra simulated latency an owner pays before its first attempt.
  uint64_t OwnerExtraDelayUs(uint32_t owner) const;
  /// True when this submission attempt is lost; consumes one drop from
  /// the round's budget and logs it.
  bool DropSubmissionAttempt(uint32_t owner);

  // --- Byzantine queries (coordinator; PR 9). --------------------------
  // Per-round sets computed by BeginRound like the crash sets, so these
  // const queries share the thread-safety contract above: safe from pool
  // workers during the owner fan-out.
  /// Owner forges the Shamir shares it reveals this round.
  bool OwnerForgesShare(uint32_t owner) const {
    return forging_owners_.count(owner) > 0;
  }
  /// Owner signs two conflicting submissions this round.
  bool OwnerEquivocates(uint32_t owner) const {
    return equivocating_owners_.count(owner) > 0;
  }
  /// Owner submits a masked vector that is not its masked update.
  bool OwnerInconsistentMask(uint32_t owner) const {
    return inconsistent_owners_.count(owner) > 0;
  }
  /// Scale factor of the owner's poisoned update this round (0 = honest).
  double OwnerPoisonMagnitude(uint32_t owner) const {
    auto it = poison_magnitudes_.find(owner);
    return it == poison_magnitudes_.end() ? 0.0 : it->second;
  }

  // --- Process-kill queries (coordinator; PR 10). ----------------------
  /// True when the plan kills the coordinator at the start of `round` and
  /// that kill has not been disarmed. The coordinator consults this right
  /// after BeginRound and, when armed, journals the kill and dies.
  bool KillScheduled(uint64_t round) const;
  /// Disarms the kill at `round` — the restart supervisor (bcfl_sim
  /// --resume) records fired kills in an on-disk journal so a kill fires
  /// exactly once across restarts instead of refiring forever.
  void DisarmKill(uint64_t round) { disarmed_kills_.insert(round); }
  /// Disarms every kill in the plan (the uninterrupted baseline run of
  /// the crash-restart CI stage: same plan, no process death).
  void DisarmAllKills() { all_kills_disarmed_ = true; }

  // --- Miner-side queries (consensus engine). --------------------------
  bool MinerOffline(uint32_t miner) const {
    return crashed_miners_.count(miner) > 0;
  }
  /// False when a partition separates `a` and `b` this round.
  bool MinersReachable(uint32_t a, uint32_t b) const;
  /// Offline, or partitioned away from `from`.
  bool MinerUnavailable(uint32_t from, uint32_t miner) const {
    return MinerOffline(miner) || !MinersReachable(from, miner);
  }

  /// The per-message verdict bound into `net::SimulatedNetwork` via
  /// `InstallOn`. Messages touching offline or partitioned miners drop;
  /// slow endpoints add latency; duplicate/reorder windows fan out or
  /// jitter the sender's traffic.
  net::FaultDecision FilterMessage(const net::Message& msg);

  /// Installs this injector's filter on `network` (miners' bus).
  void InstallOn(net::SimulatedNetwork* network);

  /// Appends a free-form entry to the executed-schedule log (protocol
  /// layers record recoveries and view changes here too).
  void RecordExecuted(uint64_t round, const std::string& what);

  /// One executed-schedule entry: what fired, in which FL round.
  struct Executed {
    uint64_t round;
    std::string what;
  };

  /// The executed schedule as a JSON array of {round, event} objects —
  /// what actually fired, as opposed to what the plan scheduled.
  std::string ExecutedScheduleJson() const;
  size_t executed_events() const { return executed_.size(); }
  /// Append-only executed log; the round ledger slices it per round by
  /// remembering its size at round start.
  const std::vector<Executed>& executed_log() const { return executed_; }

 private:

  FaultPlan plan_;
  uint32_t num_owners_;
  uint32_t num_miners_;
  uint64_t round_ = 0;

  std::set<uint32_t> crashed_owners_;
  std::set<uint32_t> crashed_miners_;
  std::set<uint32_t> partition_cell_;  ///< Minority cell this round.
  std::map<uint32_t, uint64_t> slow_owners_us_;
  std::map<uint32_t, uint64_t> slow_miners_us_;
  std::set<uint32_t> duplicating_miners_;
  std::set<uint32_t> reordering_miners_;
  std::map<uint32_t, uint32_t> submit_drops_left_;
  std::set<uint32_t> forging_owners_;
  std::set<uint32_t> equivocating_owners_;
  std::set<uint32_t> inconsistent_owners_;
  std::map<uint32_t, double> poison_magnitudes_;
  std::set<uint64_t> disarmed_kills_;
  bool all_kills_disarmed_ = false;

  std::vector<Executed> executed_;
};

}  // namespace bcfl::fault
