#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace bcfl::fault {

/// Which simulated process a fault event targets. Owners are FL data
/// owners (they submit masked updates); miners are consensus nodes on the
/// simulated P2P network.
enum class NodeKind : uint8_t { kOwner, kMiner };

/// The fault vocabulary of the chaos DSL. The first seven kinds are
/// crash/omission faults (PR 4); the last four are *byzantine* kinds
/// (PR 9) — the owner actively lies rather than merely going silent, and
/// the protocol answers with detection + on-chain slashing instead of
/// recovery alone.
enum class FaultKind : uint8_t {
  kCrash,       ///< Node goes offline at `round` (until a later recover).
  kRecover,     ///< Node comes back online at `round`.
  kSlow,        ///< Extra `delay_us` on the node's traffic in [round, end_round].
  kDropSubmit,  ///< Owner's first `count` submission attempts at `round` are lost.
  kDuplicate,   ///< Miner's outbound messages duplicated in [round, end_round].
  kReorder,     ///< Miner's outbound messages jittered in [round, end_round].
  kPartition,   ///< `members` (miners) isolated from the rest in [round, end_round].
  kBadShare,         ///< Owner forges the Shamir shares it reveals in [round, end_round].
  kInconsistentMask, ///< Owner's masked submission is not its masked update.
  kEquivocateSubmit, ///< Owner signs two conflicting submissions at `round`.
  kPoisonUpdate,     ///< Owner scales its local update by `magnitude`.
  /// Coordinator process killed at the start of `round` (PR 10) — the
  /// restart drill: the run must come back via `--resume` and finish
  /// bit-identical. Targets the whole process, so it has no node.
  kKill,
};

/// One scheduled fault, keyed to the FL round counter; durations express
/// simulated time through `delay_us`.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  NodeKind node_kind = NodeKind::kOwner;
  uint32_t node = 0;              ///< Target id (unused for partitions).
  uint64_t round = 0;             ///< Activation round.
  uint64_t end_round = 0;         ///< Inclusive last round of interval faults.
  uint32_t count = 1;             ///< Dropped submission attempts.
  uint64_t delay_us = 0;          ///< Extra latency for slow/reorder faults.
  double magnitude = 0.0;         ///< Poison scale factor (required, > 1).
  std::vector<uint32_t> members;  ///< Partition cell (miner ids).

  /// One line of the DSL, e.g. "crash owner 2 @1",
  /// "slow miner 0 @1..3 +20000us" or "poison-update owner 1 @2 *50".
  std::string ToString() const;
};

/// Knobs of the seedable random plan generator. The generator only emits
/// plans that `Validate` accepts, so every seed of a CI sweep converges
/// by construction: at most `num_owners - threshold` owners ever crash
/// (threshold share-holders always survive) and the offline-miner set
/// (crashes plus minority partition cells) never reaches half the roster.
struct FaultPlanOptions {
  uint32_t num_owners = 9;
  uint32_t num_miners = 5;
  uint32_t rounds = 10;
  /// Shamir recovery threshold; 0 = floor(num_owners / 2) + 1.
  size_t shamir_threshold = 0;
  double owner_crash_rate = 0.6;  ///< Fraction of the crash budget to spend.
  double miner_crash_rate = 0.6;
  double partition_rate = 0.35;   ///< Probability of one partition window.
  double slow_rate = 0.3;         ///< Per-node probability of a slow window.
  double drop_submit_rate = 0.25; ///< Per-owner probability of lost attempts.
  double duplicate_rate = 0.25;   ///< Per-miner probability of duplication.
  double reorder_rate = 0.25;     ///< Per-miner probability of reordering.
  uint64_t max_extra_delay_us = 20'000;
  /// Byzantine envelope (PR 9). The rate defaults to 0 and the byzantine
  /// draws happen strictly *after* every crash/noise draw, so plans from
  /// pre-existing seeds replay bit-identically. Byzantine owners are
  /// slashed and permanently retired like crashed ones, so they spend the
  /// same owner budget: |crashed ∪ byzantine| <= num_owners - threshold.
  double byzantine_rate = 0.0;    ///< Per-budget-slot misbehavior probability.
  double poison_magnitude = 50.0; ///< Scale factor for poison-update draws.
};

/// A deterministic schedule of faults for one protocol run.
///
/// Plans come from three places: the builder API (tests), the text DSL
/// (`Parse`, the `--fault-plan` flag of bcfl_sim) and the seedable
/// generator (`Random`, the chaos sweeps). `FaultInjector` (injector.h)
/// turns a plan into per-round decisions consumed by the network, the
/// consensus engine and the coordinator.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Semicolon/newline-separated DSL document; round-trips via Parse.
  std::string ToString() const;

  /// Parses the DSL. Grammar, one event per line (or ';'-separated,
  /// '#' comments):
  ///   crash (owner|miner) <id> @<round>
  ///   recover (owner|miner) <id> @<round>
  ///   slow (owner|miner) <id> @<r>[..<r2>] +<delay>us
  ///   drop-submit owner <id> @<round> [x<count>]
  ///   duplicate miner <id> @<r>[..<r2>]
  ///   reorder miner <id> @<r>[..<r2>]
  ///   partition miners <id>,<id>,... @<r>[..<r2>]
  ///   bad-share owner <id> @<r>[..<r2>]
  ///   inconsistent-mask owner <id> @<round>
  ///   equivocate-submit owner <id> @<round>
  ///   poison-update owner <id> @<round> *<magnitude>
  ///   kill @<round>
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Deterministic random plan within the safety envelope of `options`.
  static FaultPlan Random(uint64_t seed, const FaultPlanOptions& options);

  /// Rejects plans that could make the protocol unrecoverable: more than
  /// `num_owners - threshold` distinct owners crashing *or misbehaving*
  /// (byzantine owners get slashed and retired, so they spend the same
  /// budget), any round where the online miners reachable from each other
  /// fall to half the roster or below, out-of-range ids, inverted
  /// intervals, byzantine events aimed at miners, or a poison-update
  /// without a magnitude > 1.
  Status Validate(uint32_t num_owners, uint32_t num_miners,
                  size_t shamir_threshold) const;
};

/// The plan's events ordered by activation round (stable for ties, so
/// same-round events keep their listing order). Crash/recover replay is
/// "latest event at or before the round wins" — that only holds when the
/// replay walks events chronologically, and plans from Parse or the
/// builder API may list them in any order.
std::vector<const FaultEvent*> EventsByRound(
    const std::vector<FaultEvent>& events);

}  // namespace bcfl::fault
