#include "fault/injector.h"

#include <algorithm>

namespace bcfl::fault {
namespace {

/// Deterministic per-message jitter for reorder faults: a few SplitMix64
/// rounds over a message fingerprint, reduced to [0, 5ms). Large enough
/// to invert delivery order against the default latency band, small
/// enough never to look like a crash.
uint64_t ReorderJitterUs(uint64_t fingerprint) {
  uint64_t z = fingerprint + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return (z ^ (z >> 31)) % 5000;
}

bool ActiveAt(const FaultEvent& e, uint64_t round) {
  return e.round <= round && round <= std::max(e.round, e.end_round);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, uint32_t num_owners,
                             uint32_t num_miners)
    : plan_(std::move(plan)),
      num_owners_(num_owners),
      num_miners_(num_miners) {}

void FaultInjector::BeginRound(uint64_t round) {
  round_ = round;
  crashed_owners_.clear();
  crashed_miners_.clear();
  partition_cell_.clear();
  slow_owners_us_.clear();
  slow_miners_us_.clear();
  duplicating_miners_.clear();
  reordering_miners_.clear();
  submit_drops_left_.clear();
  forging_owners_.clear();
  equivocating_owners_.clear();
  inconsistent_owners_.clear();
  poison_magnitudes_.clear();

  // Crash/recover replay in round order (the plan may list events in any
  // order): the latest event at or before this round decides each node's
  // liveness.
  const std::vector<const FaultEvent*> ordered = EventsByRound(plan_.events);
  for (const FaultEvent* ep : ordered) {
    const FaultEvent& e = *ep;
    switch (e.kind) {
      case FaultKind::kCrash:
        if (e.round <= round) {
          (e.node_kind == NodeKind::kOwner ? crashed_owners_ : crashed_miners_)
              .insert(e.node);
        }
        break;
      case FaultKind::kRecover:
        if (e.round <= round) {
          (e.node_kind == NodeKind::kOwner ? crashed_owners_ : crashed_miners_)
              .erase(e.node);
        }
        break;
      case FaultKind::kSlow:
        if (ActiveAt(e, round)) {
          auto& slow = e.node_kind == NodeKind::kOwner ? slow_owners_us_
                                                       : slow_miners_us_;
          slow[e.node] = std::max(slow[e.node], e.delay_us);
        }
        break;
      case FaultKind::kDropSubmit:
        if (e.round == round) submit_drops_left_[e.node] += e.count;
        break;
      case FaultKind::kDuplicate:
        if (ActiveAt(e, round)) duplicating_miners_.insert(e.node);
        break;
      case FaultKind::kReorder:
        if (ActiveAt(e, round)) reordering_miners_.insert(e.node);
        break;
      case FaultKind::kPartition:
        if (ActiveAt(e, round)) {
          partition_cell_.insert(e.members.begin(), e.members.end());
        }
        break;
      case FaultKind::kBadShare:
        if (ActiveAt(e, round)) forging_owners_.insert(e.node);
        break;
      case FaultKind::kEquivocateSubmit:
        if (ActiveAt(e, round)) equivocating_owners_.insert(e.node);
        break;
      case FaultKind::kInconsistentMask:
        if (ActiveAt(e, round)) inconsistent_owners_.insert(e.node);
        break;
      case FaultKind::kPoisonUpdate:
        if (ActiveAt(e, round)) {
          double& mag = poison_magnitudes_[e.node];
          mag = std::max(mag, e.magnitude);
        }
        break;
      case FaultKind::kKill:
        // Queried explicitly via KillScheduled; no per-round set.
        break;
    }
  }

  // One summary entry per round keeps the executed log proportional to
  // the plan, not to traffic volume.
  for (const FaultEvent* ep : ordered) {
    const FaultEvent& e = *ep;
    if (ActiveAt(e, round) &&
        (e.kind != FaultKind::kCrash && e.kind != FaultKind::kRecover
             ? true
             : e.round == round)) {
      RecordExecuted(round, e.ToString());
    }
  }
}

bool FaultInjector::KillScheduled(uint64_t round) const {
  if (all_kills_disarmed_ || disarmed_kills_.count(round) > 0) return false;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kKill && e.round == round) return true;
  }
  return false;
}

uint64_t FaultInjector::OwnerExtraDelayUs(uint32_t owner) const {
  auto it = slow_owners_us_.find(owner);
  return it == slow_owners_us_.end() ? 0 : it->second;
}

bool FaultInjector::DropSubmissionAttempt(uint32_t owner) {
  auto it = submit_drops_left_.find(owner);
  if (it == submit_drops_left_.end() || it->second == 0) return false;
  --it->second;
  RecordExecuted(round_, "dropped submission attempt of owner " +
                             std::to_string(owner));
  return true;
}

bool FaultInjector::MinersReachable(uint32_t a, uint32_t b) const {
  if (partition_cell_.empty()) return true;
  return (partition_cell_.count(a) > 0) == (partition_cell_.count(b) > 0);
}

net::FaultDecision FaultInjector::FilterMessage(const net::Message& msg) {
  net::FaultDecision decision;
  const uint32_t from = static_cast<uint32_t>(msg.from);
  const uint32_t to = static_cast<uint32_t>(msg.to);
  if (MinerOffline(from) || MinerOffline(to) || !MinersReachable(from, to)) {
    decision.drop = true;
    return decision;
  }
  auto slow_from = slow_miners_us_.find(from);
  if (slow_from != slow_miners_us_.end()) {
    decision.extra_delay_us += slow_from->second;
  }
  auto slow_to = slow_miners_us_.find(to);
  if (slow_to != slow_miners_us_.end()) {
    decision.extra_delay_us += slow_to->second;
  }
  if (duplicating_miners_.count(from) > 0) decision.duplicates = 1;
  if (reordering_miners_.count(from) > 0) {
    // The filter runs before a sequence number is assigned, so the
    // fingerprint mixes the sampled delivery time with the payload size.
    decision.extra_delay_us +=
        ReorderJitterUs(msg.deliver_at_us ^ (msg.payload.size() << 17) ^
                        (static_cast<uint64_t>(msg.to) << 40));
  }
  return decision;
}

void FaultInjector::InstallOn(net::SimulatedNetwork* network) {
  network->set_fault_filter(
      [this](const net::Message& msg) { return FilterMessage(msg); });
}

void FaultInjector::RecordExecuted(uint64_t round, const std::string& what) {
  executed_.push_back({round, what});
}

std::string FaultInjector::ExecutedScheduleJson() const {
  obs::JsonWriter writer;
  writer.BeginArray();
  for (const Executed& e : executed_) {
    writer.BeginObject();
    writer.Field("round", static_cast<size_t>(e.round));
    writer.Field("event", e.what);
    writer.EndObject();
  }
  writer.EndArray();
  return writer.str();
}

}  // namespace bcfl::fault
