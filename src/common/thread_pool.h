#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bcfl {

/// Fixed-size worker pool used to parallelise embarrassingly parallel
/// stages: coalition-model utility evaluation in the Shapley module and
/// per-owner local training in the FL driver.
///
/// Tasks are plain `std::function<void()>`; callers that need results wrap
/// them in `std::packaged_task` via `Submit`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for i in [0, count) across the pool and waits for all.
  ///
  /// Indices are dispatched in contiguous chunks of `grain` indices per
  /// task (grain 0 picks one automatically: enough chunks for ~8 tasks
  /// per worker, so a 2^n-sized loop enqueues O(threads) closures
  /// instead of 2^n). If every index fits in a single chunk the loop
  /// runs inline on the calling thread. Exceptions thrown by `fn` are
  /// captured per chunk: a throw ends its own chunk, but every other
  /// chunk still runs to completion before the exception from the
  /// lowest-indexed failing chunk is rethrown to the caller (the same
  /// error a serial loop would surface first).
  ///
  /// The dispatch itself is allocation-free per chunk: chunks share one
  /// stack-allocated context, the per-chunk closures (context pointer +
  /// chunk index) fit std::function's small-buffer storage, and all
  /// chunks are enqueued under a single lock acquisition. The round
  /// engine calls this once per owner fan-out on the protocol hot path.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                   size_t grain = 0);

  size_t num_threads() const { return workers_.size(); }

  /// Worker count to use when the caller does not specify one:
  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t DefaultThreads();

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// A ParallelFor issued from a worker runs inline on that worker
  /// instead of enqueueing: a pool task that re-enters ParallelFor (e.g.
  /// coalition retraining whose inner GEMM is itself row-parallel) would
  /// otherwise block on chunks that can never be scheduled once every
  /// worker is parked in the same wait. Kernel-layer callers also use
  /// this to skip the parallel path entirely when already inside a task.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace bcfl
