#include "common/fsync_util.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bcfl {

Status FlushAndSync(std::FILE* file) {
  if (file == nullptr) return Status::InvalidArgument("null file");
  if (std::fflush(file) != 0) {
    return Status::Internal(std::string("fflush failed: ") +
                            std::strerror(errno));
  }
#if defined(_WIN32)
  if (_commit(_fileno(file)) != 0) {
    return Status::Internal("file sync failed");
  }
#else
  if (::fsync(fileno(file)) != 0) {
    return Status::Internal(std::string("fsync failed: ") +
                            std::strerror(errno));
  }
#endif
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
#if defined(_WIN32)
  // Windows metadata updates are synchronous enough for the test harness;
  // directory handles cannot be fsynced through the CRT.
  (void)path;
  return Status::OK();
#else
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  std::string dir = parent.empty() ? std::string(".") : parent.string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory for sync: " + dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("directory fsync failed: " + dir);
  }
  return Status::OK();
#endif
}

Status ReadExact(std::FILE* file, uint8_t* out, size_t size) {
  size_t total = 0;
  while (total < size) {
    size_t got = std::fread(out + total, 1, size - total, file);
    if (got == 0) {
      if (std::ferror(file) != 0 && errno == EINTR) {
        std::clearerr(file);
        continue;
      }
      if (std::feof(file) != 0) {
        return Status::Corruption("unexpected end of file");
      }
      return Status::Internal("read error");
    }
    total += got;
  }
  return Status::OK();
}

}  // namespace bcfl
