#pragma once

#include <cstddef>
#include <cstdint>

namespace bcfl {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum guarding every record of the durable block log and the
/// session checkpoint files. Castagnoli rather than the zip CRC because
/// x86 carries a hardware instruction for it (SSE4.2 `crc32`), so the
/// per-commit fsync path pays nanoseconds, not microseconds, for
/// integrity. Dispatch follows the sha256.cc idiom: a table-driven
/// portable kernel always exists, the hardware kernel is selected once at
/// first use via `__builtin_cpu_supports`.
///
/// `Crc32c` returns the finalized (post-inverted) checksum of `data`;
/// `Crc32cExtend` continues a previous finalized checksum, so
/// `Crc32cExtend(Crc32c(a, n), b, m) == Crc32c(ab, n + m)`.
uint32_t Crc32c(const uint8_t* data, size_t size);
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t size);

/// True when the SSE4.2 hardware kernel is compiled in and selected at
/// runtime (exposed for tests and the metrics plane).
bool Crc32cHardwareEnabled();

}  // namespace bcfl
