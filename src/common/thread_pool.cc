#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace bcfl {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace bcfl
