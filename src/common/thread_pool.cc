#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace bcfl {

namespace {
thread_local bool tls_pool_worker = false;

/// Shared state for one ParallelFor call, living on the caller's stack.
/// Completion is signalled under `mutex` (not after unlocking) because the
/// caller destroys the context as soon as `remaining` hits zero.
struct ParallelForCtx {
  const std::function<void(size_t)>* fn;
  size_t count;
  size_t grain;
  std::mutex mutex;
  std::condition_variable done;
  size_t remaining;
  std::exception_ptr error;
  size_t error_chunk;
};

void RunParallelForChunk(ParallelForCtx* ctx, size_t c) {
  const size_t begin = c * ctx->grain;
  const size_t end = std::min(begin + ctx->grain, ctx->count);
  std::exception_ptr error;
  try {
    for (size_t i = begin; i < end; ++i) (*ctx->fn)(i);
  } catch (...) {
    error = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(ctx->mutex);
  if (error && c < ctx->error_chunk) {
    ctx->error = std::move(error);
    ctx->error_chunk = c;
  }
  if (--ctx->remaining == 0) ctx->done.notify_one();
}
}  // namespace

bool ThreadPool::InWorkerThread() { return tls_pool_worker; }

size_t ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (count == 0) return;
  if (tls_pool_worker) {
    // Nested ParallelFor: every worker may already be parked waiting on
    // this very call's chunks, so enqueueing would deadlock. Run inline;
    // the per-index work is identical, so results do not change.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    // ~8 chunks per worker: coarse enough that queue traffic is O(threads),
    // fine enough that uneven per-index cost still load-balances.
    grain = std::max<size_t>(1, count / (num_threads() * 8));
  }
  const size_t num_chunks = (count + grain - 1) / grain;
  if (num_chunks <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One stack context shared by every chunk; the per-chunk closures are a
  // {context pointer, chunk index} pair small enough for std::function's
  // inline storage, so the whole dispatch allocates nothing per chunk.
  ParallelForCtx ctx;
  ctx.fn = &fn;
  ctx.count = count;
  ctx.grain = grain;
  ctx.remaining = num_chunks;
  ctx.error_chunk = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t c = 0; c < num_chunks; ++c) {
      tasks_.emplace([pctx = &ctx, c] { RunParallelForChunk(pctx, c); });
    }
  }
  cv_.notify_all();
  // Wait for every chunk before rethrowing: abandoning outstanding chunks
  // on the first failure would leave workers touching the stack context
  // that is about to go out of scope. The rethrown error is always the
  // lowest-indexed failing chunk's, independent of completion order.
  std::unique_lock<std::mutex> lock(ctx.mutex);
  ctx.done.wait(lock, [&ctx] { return ctx.remaining == 0; });
  if (ctx.error) std::rethrow_exception(ctx.error);
}

}  // namespace bcfl
