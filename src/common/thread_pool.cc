#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace bcfl {

namespace {
thread_local bool tls_pool_worker = false;
}  // namespace

bool ThreadPool::InWorkerThread() { return tls_pool_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn,
                             size_t grain) {
  if (count == 0) return;
  if (tls_pool_worker) {
    // Nested ParallelFor: every worker may already be parked waiting on
    // this very call's chunks, so enqueueing would deadlock. Run inline;
    // the per-index work is identical, so results do not change.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    // ~8 chunks per worker: coarse enough that queue traffic is O(threads),
    // fine enough that uneven per-index cost still load-balances.
    grain = std::max<size_t>(1, count / (num_threads() * 8));
  }
  const size_t num_chunks = (count + grain - 1) / grain;
  if (num_chunks <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * grain;
    const size_t end = std::min(begin + grain, count);
    futures.push_back(Submit([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for every chunk before rethrowing: abandoning outstanding chunks
  // on the first failure would leave workers touching captured state that
  // is about to go out of scope.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bcfl
