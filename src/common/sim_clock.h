#pragma once

#include <cstdint>

namespace bcfl {

/// Deterministic simulated clock, in microseconds.
///
/// The blockchain and network simulators never read wall-clock time;
/// everything is stamped from a `SimClock` that only moves when the
/// simulation advances it, which keeps block hashes and message orderings
/// reproducible run to run.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(uint64_t start_us) : now_us_(start_us) {}

  /// Current simulated time in microseconds since simulation start.
  uint64_t NowMicros() const { return now_us_; }

  /// Advances the clock by `delta_us` microseconds.
  void AdvanceMicros(uint64_t delta_us) { now_us_ += delta_us; }

  /// Moves the clock forward to `target_us` if it is in the future;
  /// never moves backwards.
  void AdvanceTo(uint64_t target_us) {
    if (target_us > now_us_) now_us_ = target_us;
  }

 private:
  uint64_t now_us_ = 0;
};

/// Wall-clock stopwatch used only by benchmarks and the runtime table.
class Stopwatch {
 public:
  Stopwatch();
  /// Restarts the stopwatch.
  void Reset();
  /// Elapsed wall time in seconds since construction or last Reset().
  double ElapsedSeconds() const;
  /// Elapsed wall time in milliseconds.
  double ElapsedMillis() const;

 private:
  uint64_t start_ns_;
};

}  // namespace bcfl
