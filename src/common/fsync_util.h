#pragma once

#include <cstdio>
#include <string>

#include "common/result.h"

namespace bcfl {

/// Durability primitives shared by the persistence layer (chain snapshot,
/// block log, session checkpoint). All of them follow the same POSIX
/// contract: data is durable only after (1) the file's own fsync and
/// (2) an fsync of the containing directory once the name changes
/// (create/rename) — a rename without the directory fsync can survive the
/// process but vanish in a power loss.

/// Flushes stdio buffers and fsyncs the open stream's file descriptor.
Status FlushAndSync(std::FILE* file);

/// Fsyncs the directory containing `path`, making a completed
/// create/rename of `path` durable.
Status SyncParentDir(const std::string& path);

/// Reads exactly `size` bytes into `out`, looping over short reads
/// (EINTR, pipes, >2 GiB files on 32-bit longs). Returns Corruption when
/// the stream ends early, Internal on a read error.
Status ReadExact(std::FILE* file, uint8_t* out, size_t size);

}  // namespace bcfl
