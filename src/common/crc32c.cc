#include "common/crc32c.h"

#include <array>

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define BCFL_CRC32C_HAVE_SSE42 1
#define BCFL_CRC32C_TARGET_SSE42 __attribute__((target("sse4.2")))
#include <nmmintrin.h>
#else
#define BCFL_CRC32C_HAVE_SSE42 0
#define BCFL_CRC32C_TARGET_SSE42
#endif

namespace bcfl {

namespace {

constexpr uint32_t kPolyReflected = 0x82F63B78u;

// Slicing-by-4 tables, built once at first use. Table 0 is the classic
// byte-at-a-time table; tables 1..3 extend it so the portable kernel
// consumes four bytes per step.
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

// Portable slicing-by-4 kernel over the raw (pre-inversion) state.
uint32_t UpdatePortable(uint32_t crc, const uint8_t* data, size_t size) {
  const Tables& tables = GetTables();
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(data[0]) |
           (static_cast<uint32_t>(data[1]) << 8) |
           (static_cast<uint32_t>(data[2]) << 16) |
           (static_cast<uint32_t>(data[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    data += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *data) & 0xFFu];
    ++data;
    --size;
  }
  return crc;
}

#if BCFL_CRC32C_HAVE_SSE42
BCFL_CRC32C_TARGET_SSE42
uint32_t UpdateHardware(uint32_t crc, const uint8_t* data, size_t size) {
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, data, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    data += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (size >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, data, 4);
    crc = _mm_crc32_u32(crc, word);
    data += 4;
    size -= 4;
  }
  while (size > 0) {
    crc = _mm_crc32_u8(crc, *data);
    ++data;
    --size;
  }
  return crc;
}

bool HardwareSupported() {
  static const bool supported = __builtin_cpu_supports("sse4.2") != 0;
  return supported;
}
#endif  // BCFL_CRC32C_HAVE_SSE42

uint32_t Update(uint32_t crc, const uint8_t* data, size_t size) {
#if BCFL_CRC32C_HAVE_SSE42
  if (HardwareSupported()) return UpdateHardware(crc, data, size);
#endif
  return UpdatePortable(crc, data, size);
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  return Update(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t size) {
  return Update(crc ^ 0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

bool Crc32cHardwareEnabled() {
#if BCFL_CRC32C_HAVE_SSE42
  return HardwareSupported();
#else
  return false;
#endif
}

}  // namespace bcfl
