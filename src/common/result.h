#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace bcfl {

/// `Result<T>` is either a value of type `T` or a non-OK `Status`.
///
/// This is the library's equivalent of `arrow::Result` / `absl::StatusOr`.
/// Accessing the value of an errored result is a programmer error and
/// asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Returns the contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result`-returning expression to `lhs`, or
/// propagates its error status from the enclosing function.
#define BCFL_ASSIGN_OR_RETURN(lhs, rexpr)                \
  BCFL_ASSIGN_OR_RETURN_IMPL_(                           \
      BCFL_RESULT_CONCAT_(_bcfl_result_, __LINE__), lhs, rexpr)

#define BCFL_RESULT_CONCAT_INNER_(x, y) x##y
#define BCFL_RESULT_CONCAT_(x, y) BCFL_RESULT_CONCAT_INNER_(x, y)
#define BCFL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace bcfl
