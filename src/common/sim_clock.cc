#include "common/sim_clock.h"

#include <chrono>

namespace bcfl {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Stopwatch::Stopwatch() : start_ns_(NowNanos()) {}

void Stopwatch::Reset() { start_ns_ = NowNanos(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(NowNanos() - start_ns_) * 1e-9;
}

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(NowNanos() - start_ns_) * 1e-6;
}

}  // namespace bcfl
