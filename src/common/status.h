#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace bcfl {

/// Coarse error taxonomy shared by every module in the library.
///
/// The library follows the Arrow/RocksDB convention: fallible operations
/// return a `Status` (or `Result<T>`, see result.h) instead of throwing.
/// Exceptions are reserved for programmer errors surfaced by assertions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kCorruption = 8,
  kPermissionDenied = 9,
  kTimeout = 10,
  kResourceExhausted = 11,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A default-constructed `Status` is OK and carries no allocation; error
/// statuses carry a code plus a free-form message. `Status` is cheap to
/// move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per taxonomy entry.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Appends `detail` to the message, preserving the code. Useful when a
  /// caller adds context while propagating an error upward.
  Status WithContext(std::string_view detail) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK `Status` from the enclosing function.
#define BCFL_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::bcfl::Status _bcfl_status = (expr);          \
    if (!_bcfl_status.ok()) return _bcfl_status;   \
  } while (0)

}  // namespace bcfl
