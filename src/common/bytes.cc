#include "common/bytes.h"

namespace bcfl {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToHex(const uint8_t* data, size_t size) {
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void ByteWriter::WriteU16(uint16_t v) {
  WriteU8(static_cast<uint8_t>(v));
  WriteU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(const Bytes& data) {
  WriteBytes(data.data(), data.size());
}

void ByteWriter::WriteBytes(const uint8_t* data, size_t size) {
  WriteU32(static_cast<uint32_t>(size));
  WriteRaw(data, size);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void ByteWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (double d : v) WriteDouble(d);
}

void ByteWriter::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) WriteU64(x);
}

void ByteWriter::WriteRaw(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

Status ByteReader::CheckAvailable(size_t n) const {
  if (size_ - offset_ < n) {
    return Status::Corruption("truncated payload: need " + std::to_string(n) +
                              " bytes, have " +
                              std::to_string(size_ - offset_));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::ReadU8() {
  BCFL_RETURN_IF_ERROR(CheckAvailable(1));
  return data_[offset_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  BCFL_RETURN_IF_ERROR(CheckAvailable(2));
  uint16_t v = static_cast<uint16_t>(data_[offset_]) |
               static_cast<uint16_t>(data_[offset_ + 1]) << 8;
  offset_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  BCFL_RETURN_IF_ERROR(CheckAvailable(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  BCFL_RETURN_IF_ERROR(CheckAvailable(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

Result<double> ByteReader::ReadDouble() {
  BCFL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> ByteReader::ReadBytes() {
  BCFL_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  return ReadRaw(size);
}

Result<std::string> ByteReader::ReadString() {
  BCFL_ASSIGN_OR_RETURN(Bytes raw, ReadBytes());
  return std::string(raw.begin(), raw.end());
}

Result<std::vector<double>> ByteReader::ReadDoubleVector() {
  BCFL_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  BCFL_RETURN_IF_ERROR(CheckAvailable(static_cast<size_t>(size) * 8));
  std::vector<double> out;
  out.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    BCFL_ASSIGN_OR_RETURN(double d, ReadDouble());
    out.push_back(d);
  }
  return out;
}

Result<std::vector<uint64_t>> ByteReader::ReadU64Vector() {
  BCFL_ASSIGN_OR_RETURN(uint32_t size, ReadU32());
  BCFL_RETURN_IF_ERROR(CheckAvailable(static_cast<size_t>(size) * 8));
  std::vector<uint64_t> out;
  out.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    BCFL_ASSIGN_OR_RETURN(uint64_t x, ReadU64());
    out.push_back(x);
  }
  return out;
}

Result<Bytes> ByteReader::ReadRaw(size_t size) {
  BCFL_RETURN_IF_ERROR(CheckAvailable(size));
  Bytes out(data_ + offset_, data_ + offset_ + size);
  offset_ += size;
  return out;
}

}  // namespace bcfl
