#include "common/logging.h"

#include <iostream>
#include <mutex>

namespace bcfl {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace bcfl
