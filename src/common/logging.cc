#include "common/logging.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

namespace bcfl {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

/// Parses BCFL_LOG_LEVEL ("debug".."none" or 0-4); falls back to the
/// compiled-in default on absence or junk.
LogLevel LevelFromEnv(LogLevel fallback) {
  const char* env = std::getenv("BCFL_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return fallback;
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn" || value == "warning") return LogLevel::kWarning;
  if (value == "error") return LogLevel::kError;
  if (value == "none") return LogLevel::kNone;
  if (value.size() == 1 && value[0] >= '0' && value[0] <= '4') {
    return static_cast<LogLevel>(value[0] - '0');
  }
  return fallback;
}

/// "2026-08-06T12:34:56.789Z" — UTC with millisecond resolution.
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  const size_t len = std::strftime(buf, size, "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buf + len, size - len, ".%03dZ", static_cast<int>(millis));
}

/// Small stable id for the calling thread (dense, assigned on first log).
unsigned ThreadLogId() {
  static std::atomic<unsigned> next{0};
  static thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Logger::Logger() { min_level_.store(LevelFromEnv(LogLevel::kWarning)); }

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) return;
  char timestamp[40];
  FormatTimestamp(timestamp, sizeof(timestamp));
  std::string line;
  line.reserve(message.size() + 64);
  line += timestamp;
  line += " [";
  line += LevelName(level);
  line += "] [tid ";
  line += std::to_string(ThreadLogId());
  line += "] ";
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lock(write_mu_);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace bcfl
