#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bcfl {

/// Byte sequence alias used across serialization, hashing and networking.
using Bytes = std::vector<uint8_t>;

/// Encodes `data` as lowercase hex.
std::string ToHex(const uint8_t* data, size_t size);
std::string ToHex(const Bytes& data);

/// Decodes a hex string (upper or lower case). Fails on odd length or
/// non-hex characters.
Result<Bytes> FromHex(std::string_view hex);

/// Little-endian binary writer with a growable buffer.
///
/// All on-chain payloads (transactions, model updates, contract state) are
/// serialized through this writer so that hashing and re-execution are
/// byte-deterministic across miners.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  /// Encodes the IEEE-754 bit pattern; exact round trip.
  void WriteDouble(double v);
  /// Length-prefixed (u32) raw bytes.
  void WriteBytes(const Bytes& data);
  void WriteBytes(const uint8_t* data, size_t size);
  /// Length-prefixed (u32) UTF-8 string.
  void WriteString(std::string_view s);
  /// Length-prefixed (u32) vector of doubles.
  void WriteDoubleVector(const std::vector<double>& v);
  /// Length-prefixed (u32) vector of u64.
  void WriteU64Vector(const std::vector<uint64_t>& v);
  /// Raw bytes with no length prefix (for fixed-width fields).
  void WriteRaw(const uint8_t* data, size_t size);

  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Little-endian binary reader over a borrowed byte span.
///
/// Every read is bounds-checked and returns `Status`/`Result`; corrupt or
/// truncated payloads surface as `Corruption` instead of undefined
/// behaviour.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& data)
      : ByteReader(data.data(), data.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<double> ReadDouble();
  /// Reads a u32 length prefix then that many bytes.
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();
  Result<std::vector<uint64_t>> ReadU64Vector();
  /// Reads exactly `size` raw bytes (no prefix).
  Result<Bytes> ReadRaw(size_t size);

  /// Number of unread bytes.
  size_t remaining() const { return size_ - offset_; }
  /// True when all bytes were consumed — parsers should check this to
  /// reject payloads with trailing garbage.
  bool exhausted() const { return offset_ == size_; }

 private:
  Status CheckAvailable(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace bcfl
