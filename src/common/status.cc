#include "common/status.h"

namespace bcfl {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view detail) const {
  if (ok()) return *this;
  std::string msg(detail);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace bcfl
