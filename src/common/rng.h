#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bcfl {

/// SplitMix64: tiny, fast, statistically strong 64-bit generator.
///
/// Used for seeding larger generators and anywhere a single deterministic
/// stream suffices. Every random decision in the library flows through a
/// seedable generator so whole experiments are bit-reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t Next();

  /// Returns a value in [0, bound). `bound` must be non-zero. Uses
  /// Lemire's multiply-shift rejection-free reduction (negligible bias
  /// for bounds far below 2^64, acceptable for simulation workloads).
  uint64_t NextBounded(uint64_t bound);

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Raw generator state, for checkpoint/restore. Restoring the saved
  /// state resumes the stream bit-identically.
  uint64_t SaveState() const { return state_; }
  void RestoreState(uint64_t state) { state_ = state; }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 — the library's general-purpose generator.
///
/// Larger state than SplitMix64 with excellent statistical quality; the
/// standard choice for simulation code where streams must be long and
/// independent.
class Xoshiro256 {
 public:
  /// Seeds the four state words from `seed` via SplitMix64 (the procedure
  /// recommended by the xoshiro authors).
  explicit Xoshiro256(uint64_t seed);

  uint64_t Next();
  uint64_t NextBounded(uint64_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Standard normal via the Marsaglia polar method.
  double NextGaussian();
  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<size_t> Permutation(size_t n);

  /// Complete generator state, for checkpoint/restore: the four xoshiro
  /// state words plus the polar-method gaussian cache (the cache matters —
  /// dropping a buffered second sample would shift every later gaussian
  /// draw and break bit-identical resume).
  struct State {
    std::array<uint64_t, 4> s{};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const {
    return State{s_, has_cached_gaussian_, cached_gaussian_};
  }
  void RestoreState(const State& state) {
    s_ = state.s;
    has_cached_gaussian_ = state.has_cached_gaussian;
    cached_gaussian_ = state.cached_gaussian;
  }

 private:
  std::array<uint64_t, 4> s_;
  // Cached second sample from the polar method.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace bcfl
