#include "common/rng.h"

#include <cmath>

namespace bcfl {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SplitMix64::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift reduction.
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

double SplitMix64::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : s_) word = seeder.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  unsigned __int128 product =
      static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(product >> 64);
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: draw (u, v) in the unit disk, transform both.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Xoshiro256::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

std::vector<size_t> Xoshiro256::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

}  // namespace bcfl
