#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace bcfl {

/// Log severity, ordered by importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

/// Minimal process-wide logger.
///
/// Simulation and protocol code logs through this sink so tests can raise
/// the threshold to keep output quiet, and examples can lower it to show
/// the protocol narrative.
///
/// Each line carries an ISO-8601 UTC timestamp and the emitting thread's
/// id:
///
///   2026-08-06T12:34:56.789Z [INFO] [tid 3] proposal committed
///
/// The initial threshold comes from the BCFL_LOG_LEVEL environment
/// variable when set ("debug", "info", "warn"/"warning", "error",
/// "none", or a numeric 0-4); `set_min_level` overrides it at runtime.
/// `Log` is thread-safe: the line is formatted off-lock and written to
/// stderr as a single mutexed write, so concurrent lines never
/// interleave.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Global();

  /// Messages below `level` are dropped.
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  /// Emits one line to stderr if `level` passes the threshold.
  void Log(LogLevel level, const std::string& message);

 private:
  Logger();

  std::atomic<LogLevel> min_level_{LogLevel::kWarning};
  std::mutex write_mu_;
};

namespace internal {

/// Stream-style helper that emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define BCFL_LOG_DEBUG() ::bcfl::internal::LogMessage(::bcfl::LogLevel::kDebug)
#define BCFL_LOG_INFO() ::bcfl::internal::LogMessage(::bcfl::LogLevel::kInfo)
#define BCFL_LOG_WARN() \
  ::bcfl::internal::LogMessage(::bcfl::LogLevel::kWarning)
#define BCFL_LOG_ERROR() ::bcfl::internal::LogMessage(::bcfl::LogLevel::kError)

}  // namespace bcfl
