#pragma once

#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::fl {

/// FedAvg aggregation (McMahan et al., AISTATS'17): the element-wise mean
/// of participant weight matrices. The paper's global train epoch.
Result<ml::Matrix> FedAvg(const std::vector<ml::Matrix>& local_weights);

/// Sample-count weighted FedAvg: each participant contributes
/// proportionally to its dataset size.
Result<ml::Matrix> FedAvgWeighted(const std::vector<ml::Matrix>& local_weights,
                                  const std::vector<size_t>& sample_counts);

}  // namespace bcfl::fl
