#include "fl/robust.h"

#include <algorithm>
#include <numeric>

namespace bcfl::fl {

namespace {

Status CheckUpdates(const std::vector<ml::Matrix>& updates) {
  if (updates.empty()) {
    return Status::InvalidArgument("no updates to aggregate");
  }
  for (const auto& u : updates) {
    if (u.rows() != updates[0].rows() || u.cols() != updates[0].cols()) {
      return Status::InvalidArgument("update shapes differ");
    }
  }
  return Status::OK();
}

double SquaredDistance(const ml::Matrix& a, const ml::Matrix& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a.data()[i] - b.data()[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

Result<ml::Matrix> CoordinateMedian(const std::vector<ml::Matrix>& updates) {
  BCFL_RETURN_IF_ERROR(CheckUpdates(updates));
  ml::Matrix out(updates[0].rows(), updates[0].cols());
  std::vector<double> column(updates.size());
  for (size_t k = 0; k < out.size(); ++k) {
    for (size_t u = 0; u < updates.size(); ++u) {
      column[u] = updates[u].data()[k];
    }
    auto mid = column.begin() + static_cast<long>(column.size() / 2);
    std::nth_element(column.begin(), mid, column.end());
    double median = *mid;
    if (column.size() % 2 == 0) {
      double below = *std::max_element(
          column.begin(), column.begin() + static_cast<long>(column.size() / 2));
      median = (median + below) / 2.0;
    }
    out.mutable_data()[k] = median;
  }
  return out;
}

Result<ml::Matrix> TrimmedMean(const std::vector<ml::Matrix>& updates,
                               size_t trim) {
  BCFL_RETURN_IF_ERROR(CheckUpdates(updates));
  if (2 * trim >= updates.size()) {
    return Status::InvalidArgument(
        "trim too large: nothing left to average");
  }
  ml::Matrix out(updates[0].rows(), updates[0].cols());
  std::vector<double> column(updates.size());
  for (size_t k = 0; k < out.size(); ++k) {
    for (size_t u = 0; u < updates.size(); ++u) {
      column[u] = updates[u].data()[k];
    }
    std::sort(column.begin(), column.end());
    double sum = 0;
    for (size_t u = trim; u < column.size() - trim; ++u) sum += column[u];
    out.mutable_data()[k] =
        sum / static_cast<double>(column.size() - 2 * trim);
  }
  return out;
}

Result<std::vector<double>> KrumScores(const std::vector<ml::Matrix>& updates,
                                       size_t byzantine) {
  BCFL_RETURN_IF_ERROR(CheckUpdates(updates));
  const size_t n = updates.size();
  if (n < byzantine + 3) {
    return Status::InvalidArgument(
        "Krum needs at least byzantine + 3 updates");
  }
  // Pairwise squared distances.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] = SquaredDistance(updates[i], updates[j]);
    }
  }
  // Score = sum of distances to the n - byzantine - 2 nearest others.
  const size_t neighbours = n - byzantine - 2;
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> others;
    others.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(dist[i][j]);
    }
    std::sort(others.begin(), others.end());
    scores[i] = std::accumulate(others.begin(),
                                others.begin() + static_cast<long>(neighbours),
                                0.0);
  }
  return scores;
}

Result<ml::Matrix> Krum(const std::vector<ml::Matrix>& updates,
                        size_t byzantine) {
  return MultiKrum(updates, byzantine, 1);
}

Result<ml::Matrix> MultiKrum(const std::vector<ml::Matrix>& updates,
                             size_t byzantine, size_t select) {
  BCFL_ASSIGN_OR_RETURN(std::vector<double> scores,
                        KrumScores(updates, byzantine));
  if (select == 0 || select > updates.size()) {
    return Status::InvalidArgument("select must be in [1, n]");
  }
  std::vector<size_t> order(updates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  ml::Matrix out(updates[0].rows(), updates[0].cols());
  for (size_t k = 0; k < select; ++k) {
    BCFL_RETURN_IF_ERROR(out.AddInPlace(updates[order[k]]));
  }
  out.Scale(1.0 / static_cast<double>(select));
  return out;
}

}  // namespace bcfl::fl
