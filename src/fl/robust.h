#pragma once

#include <vector>

#include "common/result.h"
#include "ml/matrix.h"

namespace bcfl::fl {

/// Byzantine-robust aggregation rules — the family Chen et al. [14]
/// (the paper's related work on blockchain ML) use in place of plain
/// FedAvg. Included both as baselines and for the future-work study of
/// adversarial participants' effect on contribution evaluation.

/// Coordinate-wise median of the updates. Tolerates < 1/2 arbitrary
/// outliers per coordinate.
Result<ml::Matrix> CoordinateMedian(const std::vector<ml::Matrix>& updates);

/// Coordinate-wise trimmed mean: drops the `trim` largest and `trim`
/// smallest values per coordinate, averages the rest. Requires
/// 2*trim < updates.size().
Result<ml::Matrix> TrimmedMean(const std::vector<ml::Matrix>& updates,
                               size_t trim);

/// Krum (Blanchard et al.) / l-nearest selection: scores each update by
/// the summed squared distance to its `num_updates - byzantine - 2`
/// nearest neighbours and returns the update with the lowest score —
/// the one most surrounded by agreeing peers.
Result<ml::Matrix> Krum(const std::vector<ml::Matrix>& updates,
                        size_t byzantine);

/// Multi-Krum: averages the `select` lowest-scoring updates (Krum's
/// selection generalised; select = 1 reduces to Krum).
Result<ml::Matrix> MultiKrum(const std::vector<ml::Matrix>& updates,
                             size_t byzantine, size_t select);

/// Krum scores, exposed for analysis (same ordering Krum uses).
Result<std::vector<double>> KrumScores(const std::vector<ml::Matrix>& updates,
                                       size_t byzantine);

}  // namespace bcfl::fl
