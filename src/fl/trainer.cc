#include "fl/trainer.h"

#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::fl {

FederatedTrainer::FederatedTrainer(std::vector<FlClient> clients,
                                   FlConfig config)
    : clients_(std::move(clients)), config_(config) {}

Result<FlRunResult> FederatedTrainer::Run(ThreadPool* pool) const {
  if (clients_.empty()) {
    return Status::FailedPrecondition("no clients registered");
  }
  size_t features = clients_[0].data().num_features();
  int classes = clients_[0].data().num_classes();
  ml::LogisticRegression init(features, classes, config_.local);
  return RunFrom(init.weights(), pool);
}

Result<FlRunResult> FederatedTrainer::RunFrom(const ml::Matrix& initial,
                                              ThreadPool* pool) const {
  if (clients_.empty()) {
    return Status::FailedPrecondition("no clients registered");
  }
  if (pool == nullptr) pool = config_.pool;
  FlRunResult result;
  result.global_weights = initial;
  result.per_round_locals.reserve(config_.rounds);
  result.per_round_globals.reserve(config_.rounds);

  static auto& local_updates =
      obs::MetricsRegistry::Global().GetCounter("fl.local_updates");
  static auto& train_us =
      obs::MetricsRegistry::Global().GetHistogram("fl.train_round_us");
  static auto& aggregate_us =
      obs::MetricsRegistry::Global().GetHistogram("fl.aggregate_us");

  for (size_t round = 0; round < config_.rounds; ++round) {
    obs::ScopedSpan round_span(obs::Tracer::Global(), "fl_round", "fl");
    std::vector<ml::Matrix> locals(clients_.size());
    std::vector<Status> statuses(clients_.size(), Status::OK());
    auto train_one = [&](size_t i) {
      auto update = clients_[i].LocalUpdate(result.global_weights);
      if (update.ok()) {
        locals[i] = std::move(update).value();
      } else {
        statuses[i] = update.status();
      }
    };
    {
      obs::ScopedSpan span(obs::Tracer::Global(), "train", "fl");
      obs::ScopedLatency latency(train_us);
      if (pool != nullptr) {
        pool->ParallelFor(clients_.size(), train_one);
      } else {
        for (size_t i = 0; i < clients_.size(); ++i) train_one(i);
      }
    }
    local_updates.Add(clients_.size());
    for (const Status& s : statuses) {
      BCFL_RETURN_IF_ERROR(s);
    }

    obs::ScopedSpan agg_span(obs::Tracer::Global(), "aggregate", "fl");
    obs::ScopedLatency agg_latency(aggregate_us);
    Result<ml::Matrix> aggregated = Status::Internal("unset");
    if (config_.weighted_aggregation) {
      std::vector<size_t> counts(clients_.size());
      for (size_t i = 0; i < clients_.size(); ++i) {
        counts[i] = clients_[i].num_examples();
      }
      aggregated = FedAvgWeighted(locals, counts);
    } else {
      aggregated = FedAvg(locals);
    }
    if (!aggregated.ok()) return aggregated.status();

    result.global_weights = std::move(aggregated).value();
    result.per_round_locals.push_back(std::move(locals));
    result.per_round_globals.push_back(result.global_weights);
  }
  return result;
}

Result<ml::Matrix> FederatedTrainer::TrainCentralized(
    const std::vector<size_t>& client_idx, size_t total_epochs) const {
  static auto& retrains =
      obs::MetricsRegistry::Global().GetCounter("fl.centralized_retrains");
  retrains.Add();
  if (client_idx.empty()) {
    // The empty coalition: the untrained (zero-weight) model.
    if (clients_.empty()) {
      return Status::FailedPrecondition("no clients registered");
    }
    ml::LogisticRegression init(clients_[0].data().num_features(),
                                clients_[0].data().num_classes(),
                                config_.local);
    return init.weights();
  }
  std::vector<const ml::Dataset*> parts;
  parts.reserve(client_idx.size());
  for (size_t idx : client_idx) {
    if (idx >= clients_.size()) {
      return Status::OutOfRange("client index out of range");
    }
    parts.push_back(&clients_[idx].data());
  }
  BCFL_ASSIGN_OR_RETURN(ml::Dataset merged, ml::Dataset::Concatenate(parts));
  ml::LogisticRegression model(merged.num_features(), merged.num_classes(),
                               config_.local);
  size_t epochs = total_epochs != 0
                      ? total_epochs
                      : config_.rounds * config_.local.epochs;
  BCFL_RETURN_IF_ERROR(model.TrainEpochs(merged, epochs));
  return model.weights();
}

}  // namespace bcfl::fl
