#include "fl/fedavg.h"

namespace bcfl::fl {

Result<ml::Matrix> FedAvg(const std::vector<ml::Matrix>& local_weights) {
  return ml::MeanOfMatrices(local_weights);
}

Result<ml::Matrix> FedAvgWeighted(const std::vector<ml::Matrix>& local_weights,
                                  const std::vector<size_t>& sample_counts) {
  if (local_weights.size() != sample_counts.size()) {
    return Status::InvalidArgument("weights/sample-count size mismatch");
  }
  std::vector<double> weights(sample_counts.size());
  for (size_t i = 0; i < sample_counts.size(); ++i) {
    weights[i] = static_cast<double>(sample_counts[i]);
  }
  return ml::WeightedMeanOfMatrices(local_weights, weights);
}

}  // namespace bcfl::fl
