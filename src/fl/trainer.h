#pragma once

#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "fl/client.h"
#include "fl/fedavg.h"
#include "ml/dataset.h"

namespace bcfl::fl {

/// Configuration for a plain (non-secure) federated training run.
struct FlConfig {
  size_t rounds = 10;  ///< Global FedAvg rounds (R in the paper).
  ml::LogisticRegressionConfig local;
  bool weighted_aggregation = false;  ///< FedAvg vs sample-weighted FedAvg.
  /// Default worker pool for local training (null = serial). A non-null
  /// pool passed to Run/RunFrom takes precedence, so drivers can wire
  /// one pool through the whole pipeline via config.
  ThreadPool* pool = nullptr;
};

/// Everything a federated run produces, kept because contribution
/// evaluation replays history: GroupSV consumes the per-round local
/// weights, and coalition models are aggregated from them "in a FL
/// fashion" (Sect. IV-B).
struct FlRunResult {
  ml::Matrix global_weights;
  /// per_round_locals[r][i] = local weights of client i after round r.
  std::vector<std::vector<ml::Matrix>> per_round_locals;
  /// Global model weights after each round (post-aggregation).
  std::vector<ml::Matrix> per_round_globals;
};

/// Reference FL driver without blockchain or masking — the baseline the
/// secure on-chain pipeline is validated against: both must produce
/// bit-comparable global models (up to fixed-point quantisation).
class FederatedTrainer {
 public:
  FederatedTrainer(std::vector<FlClient> clients, FlConfig config);

  size_t num_clients() const { return clients_.size(); }
  const std::vector<FlClient>& clients() const { return clients_; }
  const FlConfig& config() const { return config_; }

  /// Runs `config().rounds` rounds from a zero-initialised model.
  /// `pool` (optional) parallelises local training across clients.
  Result<FlRunResult> Run(ThreadPool* pool = nullptr) const;

  /// Runs from explicit initial weights.
  Result<FlRunResult> RunFrom(const ml::Matrix& initial_weights,
                              ThreadPool* pool = nullptr) const;

  /// Trains a centralized model on the union of the given clients' data —
  /// used to build ground-truth coalition models for the native SV.
  /// `total_epochs` defaults to rounds * local epochs for parity.
  Result<ml::Matrix> TrainCentralized(const std::vector<size_t>& client_idx,
                                      size_t total_epochs = 0) const;

 private:
  std::vector<FlClient> clients_;
  FlConfig config_;
};

}  // namespace bcfl::fl
