#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"

namespace bcfl::fl {

/// Identifier of a data owner / FL participant.
using OwnerId = uint32_t;

/// One data owner in the cross-silo federation.
///
/// Holds the owner's private horizontal partition and performs local
/// training: starting from the current global weights, run the configured
/// number of local gradient-descent epochs and return the new local
/// weights `w_i` (FedAvg averages weights, not gradients).
class FlClient {
 public:
  FlClient(OwnerId id, ml::Dataset data,
           ml::LogisticRegressionConfig local_config);

  OwnerId id() const { return id_; }
  const ml::Dataset& data() const { return data_; }
  ml::Dataset& mutable_data() { return data_; }
  size_t num_examples() const { return data_.num_examples(); }

  /// Trains from `global_weights` and returns the updated local weights.
  Result<ml::Matrix> LocalUpdate(const ml::Matrix& global_weights) const;

 private:
  OwnerId id_;
  ml::Dataset data_;
  ml::LogisticRegressionConfig local_config_;
};

}  // namespace bcfl::fl
