#include "fl/client.h"

namespace bcfl::fl {

FlClient::FlClient(OwnerId id, ml::Dataset data,
                   ml::LogisticRegressionConfig local_config)
    : id_(id), data_(std::move(data)), local_config_(local_config) {}

Result<ml::Matrix> FlClient::LocalUpdate(
    const ml::Matrix& global_weights) const {
  BCFL_ASSIGN_OR_RETURN(
      ml::LogisticRegression model,
      ml::LogisticRegression::FromWeights(global_weights, local_config_));
  BCFL_RETURN_IF_ERROR(model.Train(data_));
  return model.weights();
}

}  // namespace bcfl::fl
