#include "shapley/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcfl::shapley {
namespace {

TEST(CosineTest, IdenticalVectorsScoreOne) {
  auto sim = CosineSimilarity({1, 2, 3}, {1, 2, 3});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0, 1e-12);
}

TEST(CosineTest, ScaledVectorsScoreOne) {
  auto sim = CosineSimilarity({1, 2, 3}, {10, 20, 30});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectorsScoreZero) {
  auto sim = CosineSimilarity({1, 0}, {0, 1});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 0.0, 1e-12);
}

TEST(CosineTest, OppositeVectorsScoreMinusOne) {
  auto sim = CosineSimilarity({1, 2}, {-1, -2});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, -1.0, 1e-12);
}

TEST(CosineTest, HandComputedValue) {
  // cos([1,1],[1,0]) = 1/sqrt(2).
  auto sim = CosineSimilarity({1, 1}, {1, 0});
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(*sim, 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(CosineTest, RejectsBadInput) {
  EXPECT_FALSE(CosineSimilarity({}, {}).ok());
  EXPECT_FALSE(CosineSimilarity({1}, {1, 2}).ok());
  EXPECT_TRUE(
      CosineSimilarity({0, 0}, {1, 2}).status().IsFailedPrecondition());
}

TEST(L2Test, HandComputed) {
  auto dist = L2Distance({0, 0}, {3, 4});
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(*dist, 5.0);
  EXPECT_DOUBLE_EQ(*L2Distance({1, 2}, {1, 2}), 0.0);
}

TEST(L2Test, RejectsMismatch) {
  EXPECT_FALSE(L2Distance({1}, {1, 2}).ok());
}

TEST(AverageRanksTest, SimpleOrdering) {
  // values 30,10,20 -> ranks 3,1,2.
  EXPECT_EQ(AverageRanks({30, 10, 20}), (std::vector<double>{3, 1, 2}));
}

TEST(AverageRanksTest, TiesGetAveragedRank) {
  // values 5,5,1 -> the two 5s share ranks 2 and 3 -> 2.5 each.
  EXPECT_EQ(AverageRanks({5, 5, 1}), (std::vector<double>{2.5, 2.5, 1}));
}

TEST(SpearmanTest, PerfectMonotoneIsOne) {
  auto rho = SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40});
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 1.0, 1e-12);
  // Nonlinear but monotone still scores 1.
  auto rho2 = SpearmanCorrelation({1, 2, 3, 4}, {1, 4, 9, 16});
  ASSERT_TRUE(rho2.ok());
  EXPECT_NEAR(*rho2, 1.0, 1e-12);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  auto rho = SpearmanCorrelation({1, 2, 3}, {3, 2, 1});
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -1.0, 1e-12);
}

TEST(SpearmanTest, HandComputedPartialCorrelation) {
  // Ranks of u: 1,2,3; ranks of v: 2,1,3. d = (-1,1,0);
  // rho = 1 - 6*2 / (3*8) = 0.5.
  auto rho = SpearmanCorrelation({10, 20, 30}, {20, 10, 30});
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 0.5, 1e-12);
}

TEST(SpearmanTest, RejectsDegenerateInput) {
  EXPECT_FALSE(SpearmanCorrelation({1}, {1}).ok());
  EXPECT_TRUE(SpearmanCorrelation({2, 2, 2}, {1, 2, 3})
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace bcfl::shapley
