// Chaos tests: the full protocol must converge under every random fault
// plan the generator emits, and runs must stay bit-deterministic so any
// failing seed reproduces exactly. BCFL_CHAOS_SEEDS overrides the sweep
// width (CI uses the bcfl_sim --chaos-sweep stage for the long version).

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/coordinator.h"

namespace bcfl::core {
namespace {

BcflConfig ChaosConfig() {
  BcflConfig config;
  config.num_owners = 6;
  config.num_miners = 5;
  config.rounds = 3;
  config.num_groups = 2;
  config.seed = 21;
  config.seed_e = 5;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 300;
  return config;
}

fault::FaultPlanOptions PlanOptions(const BcflConfig& config) {
  fault::FaultPlanOptions options;
  options.num_owners = config.num_owners;
  options.num_miners = static_cast<uint32_t>(config.num_miners);
  options.rounds = config.rounds;
  return options;
}

size_t SweepWidth() {
  const char* env = std::getenv("BCFL_CHAOS_SEEDS");
  if (env != nullptr) {
    long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<size_t>(value);
  }
  return 4;
}

TEST(ChaosTest, RandomPlansConvergeWithFrozenSvInvariant) {
  BcflConfig base = ChaosConfig();
  fault::FaultPlanOptions options = PlanOptions(base);
  for (uint64_t seed = 0; seed < SweepWidth(); ++seed) {
    BcflConfig config = base;
    config.fault_plan = fault::FaultPlan::Random(seed * 7919 + 1, options);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 config.fault_plan.ToString());
    auto coordinator = BcflCoordinator::Create(config);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
    auto result = (*coordinator)->Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Every round committed and evaluated despite the injected faults.
    ASSERT_EQ(result->per_round_sv.size(), base.rounds);
    ASSERT_EQ(result->round_accuracies.size(), base.rounds);

    // Frozen-SV invariant: a retired owner scores exactly zero in its
    // retirement round and in every round after it.
    for (const auto& [owner, retired_round] : result->retired_at) {
      for (uint64_t round = retired_round; round < base.rounds; ++round) {
        EXPECT_EQ(result->per_round_sv[round][owner], 0.0)
            << "owner " << owner << " round " << round;
      }
    }

    // The surviving replicas agree on the final state.
    auto& engine = (*coordinator)->engine();
    size_t canonical = engine.num_miners();
    for (size_t m = 0; m < engine.num_miners(); ++m) {
      if (!engine.MinerParticipating(static_cast<uint32_t>(m))) continue;
      if (canonical == engine.num_miners()) {
        canonical = m;
        continue;
      }
      EXPECT_EQ(engine.miner(m).state().StateRoot(),
                engine.miner(canonical).state().StateRoot())
          << "miner " << m;
    }
    ASSERT_NE(canonical, engine.num_miners());  // Majority stays online.
  }
}

TEST(ChaosTest, ByzantineMixedPlansConvergeWithSlashInvariants) {
  // Random plans drawing byzantine events (bad shares, equivocation,
  // inconsistent masks, poisoned updates) on top of the crash/omission
  // mix: every seed must converge, every slashed owner must be retired
  // and frozen from its conviction round on.
  BcflConfig base = ChaosConfig();
  base.update_norm_bound = 5.0;  // Arm the poisoning gate.
  fault::FaultPlanOptions options = PlanOptions(base);
  options.byzantine_rate = 0.6;
  size_t slashes_seen = 0;
  for (uint64_t seed = 0; seed < SweepWidth(); ++seed) {
    BcflConfig config = base;
    config.fault_plan = fault::FaultPlan::Random(seed * 104729 + 3, options);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 config.fault_plan.ToString());
    auto coordinator = BcflCoordinator::Create(config);
    ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
    auto result = (*coordinator)->Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->per_round_sv.size(), base.rounds);
    slashes_seen += result->slashed_at.size();

    auto& engine = (*coordinator)->engine();
    for (const auto& [owner, slashed_round] : result->slashed_at) {
      // A slash implies retirement at the same round, the on-chain
      // conviction record, and a frozen SV from that round on.
      ASSERT_TRUE(result->retired_at.count(owner) > 0) << "owner " << owner;
      EXPECT_EQ(result->retired_at.at(owner), slashed_round);
      EXPECT_TRUE(engine.CanonicalState().Has(keys::Slashed(owner)));
      for (uint64_t round = slashed_round; round < base.rounds; ++round) {
        EXPECT_EQ(result->per_round_sv[round][owner], 0.0)
            << "owner " << owner << " round " << round;
      }
    }
    // Owners retired without a slash (plain crashes) carry no conviction.
    for (const auto& [owner, _] : result->retired_at) {
      if (result->slashed_at.count(owner) > 0) continue;
      EXPECT_FALSE(engine.CanonicalState().Has(keys::Slashed(owner)));
    }
  }
  // The 0.6 rate makes an all-honest sweep essentially impossible.
  EXPECT_GT(slashes_seen, 0u);
}

TEST(ChaosTest, FaultedRunsAreDeterministic) {
  BcflConfig config = ChaosConfig();
  config.fault_plan =
      fault::FaultPlan::Random(12345, PlanOptions(config));
  auto c1 = BcflCoordinator::Create(config);
  auto c2 = BcflCoordinator::Create(config);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto r1 = (*c1)->Run();
  auto r2 = (*c2)->Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->total_sv, r2->total_sv);
  EXPECT_EQ(r1->global_weights, r2->global_weights);
  EXPECT_EQ(r1->retired_at, r2->retired_at);
  EXPECT_EQ(r1->submission_retries, r2->submission_retries);
  EXPECT_EQ(r1->blocks_committed, r2->blocks_committed);
}

TEST(ChaosTest, ExecutedScheduleIsExportedAsJson) {
  BcflConfig config = ChaosConfig();
  config.fault_plan = *fault::FaultPlan::Parse(
      "crash owner 2 @1; crash miner 4 @1; recover miner 4 @2");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  ASSERT_TRUE((*coordinator)->Run().ok());
  fault::FaultInjector* injector = (*coordinator)->fault_injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_GT(injector->executed_events(), 0u);
  std::string json = injector->ExecutedScheduleJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  EXPECT_NE(json.find("crash owner 2"), std::string::npos);
}

}  // namespace
}  // namespace bcfl::core
