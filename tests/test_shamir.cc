#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/thread_pool.h"

namespace bcfl::crypto {
namespace {

using SSS = ShamirSecretSharing;

TEST(ShamirFieldTest, AddSubInverse) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = rng.NextBounded(SSS::kPrime);
    uint64_t b = rng.NextBounded(SSS::kPrime);
    EXPECT_EQ(SSS::FieldSub(SSS::FieldAdd(a, b), b), a);
  }
}

TEST(ShamirFieldTest, MulMatchesInt128) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    uint64_t a = rng.NextBounded(SSS::kPrime);
    uint64_t b = rng.NextBounded(SSS::kPrime);
    uint64_t expected = static_cast<uint64_t>(
        static_cast<unsigned __int128>(a) * b % SSS::kPrime);
    EXPECT_EQ(SSS::FieldMul(a, b), expected);
  }
}

TEST(ShamirFieldTest, InverseIsMultiplicativeInverse) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    uint64_t a = 1 + rng.NextBounded(SSS::kPrime - 1);
    EXPECT_EQ(SSS::FieldMul(a, SSS::FieldInv(a)), 1u);
  }
}

TEST(ShamirFieldTest, PowEdgeCases) {
  EXPECT_EQ(SSS::FieldPow(0, 0), 1u);  // Convention.
  EXPECT_EQ(SSS::FieldPow(5, 0), 1u);
  EXPECT_EQ(SSS::FieldPow(5, 1), 5u);
  EXPECT_EQ(SSS::FieldPow(2, 10), 1024u);
}

TEST(ShamirTest, CreateValidatesArguments) {
  EXPECT_FALSE(SSS::Create(0, 5).ok());
  EXPECT_FALSE(SSS::Create(6, 5).ok());
  EXPECT_TRUE(SSS::Create(1, 1).ok());
  EXPECT_TRUE(SSS::Create(3, 5).ok());
}

class ShamirRoundTripTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(ShamirRoundTripTest, SplitReconstruct) {
  auto [threshold, num_shares, secret_len] = GetParam();
  auto scheme = SSS::Create(threshold, num_shares);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(1234);
  Bytes secret(secret_len);
  for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());

  auto shares = scheme->Split(secret, &rng);
  ASSERT_EQ(shares.size(), num_shares);

  // Exactly threshold shares reconstruct.
  std::vector<ShamirShare> subset(shares.begin(),
                                  shares.begin() + static_cast<long>(threshold));
  auto back = scheme->Reconstruct(subset, secret.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, secret);

  // A different subset (from the end) also reconstructs.
  std::vector<ShamirShare> tail(shares.end() - static_cast<long>(threshold),
                                shares.end());
  auto back2 = scheme->Reconstruct(tail, secret.size());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(*back2, secret);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ShamirRoundTripTest,
    ::testing::Values(std::make_tuple(1, 1, 16), std::make_tuple(2, 3, 32),
                      std::make_tuple(3, 5, 32), std::make_tuple(5, 9, 32),
                      std::make_tuple(5, 9, 7), std::make_tuple(2, 9, 1),
                      std::make_tuple(9, 9, 64)));

TEST(ShamirTest, InsufficientSharesFail) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(7);
  Bytes secret = {1, 2, 3, 4};
  auto shares = scheme->Split(secret, &rng);
  std::vector<ShamirShare> two(shares.begin(), shares.begin() + 2);
  EXPECT_TRUE(
      scheme->Reconstruct(two, secret.size()).status().IsFailedPrecondition());
}

TEST(ShamirTest, BelowThresholdRevealsNothingLooking) {
  // With t-1 shares every candidate secret is equally consistent; at
  // minimum, reconstructing from a *wrong-size* quorum must not
  // accidentally yield the secret. We check that using t shares where
  // one share is substituted by a random forgery yields a different
  // secret (overwhelming probability).
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(8);
  Bytes secret = {42, 43, 44, 45, 46, 47, 48, 49};
  auto shares = scheme->Split(secret, &rng);
  std::vector<ShamirShare> forged(shares.begin(), shares.begin() + 3);
  for (auto& v : forged[0].values) v = rng.NextBounded(SSS::kPrime);
  auto back = scheme->Reconstruct(forged, secret.size());
  ASSERT_TRUE(back.ok());
  EXPECT_NE(*back, secret);
}

TEST(ShamirTest, DuplicateSharesRejected) {
  auto scheme = SSS::Create(2, 4);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(9);
  auto shares = scheme->Split(Bytes{9, 9}, &rng);
  std::vector<ShamirShare> dup = {shares[0], shares[0]};
  EXPECT_TRUE(scheme->Reconstruct(dup, 2).status().IsInvalidArgument());
}

TEST(ShamirTest, InvalidXCoordinateRejected) {
  auto scheme = SSS::Create(2, 3);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(10);
  auto shares = scheme->Split(Bytes{5}, &rng);
  shares[0].x = 0;
  EXPECT_TRUE(
      scheme->Reconstruct(shares, 1).status().IsInvalidArgument());
}

TEST(ShamirTest, MismatchedChunkCountsRejected) {
  auto scheme = SSS::Create(2, 3);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(11);
  auto shares = scheme->Split(Bytes(14), &rng);  // 2 chunks.
  shares[1].values.pop_back();
  EXPECT_TRUE(
      scheme->Reconstruct(shares, 14).status().IsInvalidArgument());
}

TEST(ShamirTest, EmptySecretRoundTrips) {
  auto scheme = SSS::Create(2, 3);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(12);
  auto shares = scheme->Split(Bytes{}, &rng);
  auto back = scheme->Reconstruct(shares, 0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(ShamirTest, ExtraSharesBeyondThresholdIgnoredConsistently) {
  auto scheme = SSS::Create(3, 7);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(13);
  Bytes secret = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33};
  auto shares = scheme->Split(secret, &rng);
  auto back = scheme->Reconstruct(shares, secret.size());  // All 7.
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, secret);
}

TEST(ShamirBasisTest, BasisPathMatchesReferenceReconstruction) {
  // The hoisted-basis path (batch-inverted Lagrange coefficients) must be
  // bit-identical to the seed-faithful per-call reference.
  auto scheme = SSS::Create(5, 9);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    Bytes secret(1 + static_cast<size_t>(trial) * 5);
    for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());
    auto shares = scheme->Split(secret, &rng);
    std::vector<ShamirShare> quorum(shares.begin(), shares.begin() + 5);

    auto reference = scheme->ReconstructReference(quorum, secret.size());
    auto via_reconstruct = scheme->Reconstruct(quorum, secret.size());
    auto basis = scheme->PrepareBasis(quorum);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(via_reconstruct.ok());
    ASSERT_TRUE(basis.ok());
    auto via_basis =
        scheme->ReconstructWithBasis(*basis, quorum, secret.size());
    ASSERT_TRUE(via_basis.ok());
    EXPECT_EQ(*reference, secret);
    EXPECT_EQ(*via_reconstruct, *reference);
    EXPECT_EQ(*via_basis, *reference);
  }
}

TEST(ShamirBasisTest, BasisIsReusableAcrossSecrets) {
  // One basis serves every secret shared at the same x-coordinates — the
  // recovery-round shape (many secrets, one surviving roster).
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(78);
  std::vector<Bytes> secrets;
  std::vector<std::vector<ShamirShare>> quorums;
  for (int s = 0; s < 4; ++s) {
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());
    auto shares = scheme->Split(secret, &rng);
    quorums.emplace_back(shares.begin() + 1, shares.begin() + 4);
    secrets.push_back(std::move(secret));
  }
  auto basis = scheme->PrepareBasis(quorums[0]);
  ASSERT_TRUE(basis.ok());
  for (size_t s = 0; s < secrets.size(); ++s) {
    auto back = scheme->ReconstructWithBasis(*basis, quorums[s], 32);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, secrets[s]);
  }
}

TEST(ShamirBasisTest, MismatchedCoordinatesRejected) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(79);
  auto shares = scheme->Split(Bytes{1, 2, 3}, &rng);
  std::vector<ShamirShare> quorum(shares.begin(), shares.begin() + 3);
  auto basis = scheme->PrepareBasis(quorum);
  ASSERT_TRUE(basis.ok());
  // Same shares in a different order: positional verification must fail
  // rather than silently combining values with the wrong coefficients.
  std::vector<ShamirShare> swapped = {quorum[1], quorum[0], quorum[2]};
  EXPECT_TRUE(scheme->ReconstructWithBasis(*basis, swapped, 3)
                  .status()
                  .IsInvalidArgument());
  // A share from a different roster position likewise.
  std::vector<ShamirShare> other = {shares[3], quorum[1], quorum[2]};
  EXPECT_TRUE(scheme->ReconstructWithBasis(*basis, other, 3)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShamirBatchTest, BatchMatchesReferencePerSecret) {
  auto scheme = SSS::Create(5, 9);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(80);
  std::vector<std::vector<ShamirShare>> share_sets;
  std::vector<size_t> sizes;
  std::vector<Bytes> secrets;
  for (int s = 0; s < 6; ++s) {
    Bytes secret(32);
    for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());
    auto shares = scheme->Split(secret, &rng);
    share_sets.emplace_back(shares.begin() + 2, shares.begin() + 7);
    sizes.push_back(secret.size());
    secrets.push_back(std::move(secret));
  }
  // Serial batch, then pooled batch: both must equal the reference.
  auto serial = scheme->ReconstructBatch(share_sets, sizes, nullptr);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  auto pooled = scheme->ReconstructBatch(share_sets, sizes, &pool);
  ASSERT_TRUE(pooled.ok());
  ASSERT_EQ(serial->size(), share_sets.size());
  for (size_t s = 0; s < share_sets.size(); ++s) {
    auto reference = scheme->ReconstructReference(share_sets[s], sizes[s]);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*reference, secrets[s]);
    EXPECT_EQ((*serial)[s], *reference) << "secret " << s;
    EXPECT_EQ((*pooled)[s], *reference) << "secret " << s;
  }
}

TEST(ShamirBatchTest, BatchHandlesMixedRosters) {
  // Sets from different surviving rosters force a basis recomputation
  // mid-batch; outputs must still land slot-addressed.
  auto scheme = SSS::Create(3, 6);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(81);
  std::vector<std::vector<ShamirShare>> share_sets;
  std::vector<size_t> sizes;
  std::vector<Bytes> secrets;
  for (int s = 0; s < 4; ++s) {
    Bytes secret(16);
    for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());
    auto shares = scheme->Split(secret, &rng);
    size_t offset = (s % 2 == 0) ? 0 : 2;  // Alternate rosters.
    share_sets.emplace_back(shares.begin() + offset,
                            shares.begin() + offset + 3);
    sizes.push_back(secret.size());
    secrets.push_back(std::move(secret));
  }
  auto batch = scheme->ReconstructBatch(share_sets, sizes, nullptr);
  ASSERT_TRUE(batch.ok());
  for (size_t s = 0; s < secrets.size(); ++s) {
    EXPECT_EQ((*batch)[s], secrets[s]) << "secret " << s;
  }
}

TEST(ShamirBatchTest, BatchErrorNamesLowestFailingSet) {
  auto scheme = SSS::Create(2, 4);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(82);
  auto good = scheme->Split(Bytes{1, 2}, &rng);
  auto bad = scheme->Split(Bytes{3, 4}, &rng);
  bad[0].x = 0;  // Invalid coordinate.
  std::vector<std::vector<ShamirShare>> sets = {
      {good[0], good[1]}, {bad[0], bad[1]}, {good[2], good[3]}};
  std::vector<size_t> sizes = {2, 2, 2};
  EXPECT_TRUE(
      scheme->ReconstructBatch(sets, sizes, nullptr).status().IsInvalidArgument());
  ThreadPool pool(3);
  EXPECT_TRUE(
      scheme->ReconstructBatch(sets, sizes, &pool).status().IsInvalidArgument());
}

TEST(ShamirVssTest, VerifiedQuorumReconstructsAfterDroppingForgery) {
  // The recovery-path contract (PR 9): verify every revealed share
  // against the dealer's Feldman commitment, drop what fails, and
  // reconstruct from the survivors — the forged share never taints the
  // secret, and the forger is identified by slot.
  auto scheme = SSS::Create(3, 6);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(90);
  Bytes secret = {7, 7, 7, 7, 7, 7, 7, 7};
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(secret, &rng, &commitment);
  shares[1].values[0] = SSS::FieldAdd(shares[1].values[0], 1);  // Forged.

  std::vector<ShamirShare> accepted;
  for (const auto& share : shares) {
    if (scheme->VerifyShare(share, commitment)) accepted.push_back(share);
  }
  ASSERT_EQ(accepted.size(), 5u);  // Exactly the forger excluded.
  EXPECT_EQ(accepted[1].x, shares[2].x);
  auto back = scheme->Reconstruct(accepted, secret.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, secret);
}

TEST(ShamirVssTest, VerifyShareIndexZeroAndCountMismatchRejected) {
  auto scheme = SSS::Create(2, 4);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(91);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(Bytes{1, 2, 3}, &rng, &commitment);
  ShamirShare zero = shares[0];
  zero.x = 0;
  EXPECT_FALSE(scheme->VerifyShare(zero, commitment));
  ShamirShare short_share = shares[0];
  short_share.values.clear();
  EXPECT_FALSE(scheme->VerifyShare(short_share, commitment));
  EXPECT_TRUE(scheme->VerifyShare(shares[0], commitment));
}

TEST(ShamirVssTest, ExactlyThresholdRosterEveryShareVerifies) {
  auto scheme = SSS::Create(5, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(92);
  Bytes secret(32);
  for (auto& b : secret) b = static_cast<uint8_t>(rng.Next());
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(secret, &rng, &commitment);
  for (const auto& share : shares) {
    EXPECT_TRUE(scheme->VerifyShare(share, commitment));
    EXPECT_EQ(scheme->VerifyShare(share, commitment),
              scheme->VerifyShareReference(share, commitment));
  }
  auto back = scheme->Reconstruct(shares, secret.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, secret);
}

TEST(ShamirBatchTest, SizesLengthMismatchRejected) {
  auto scheme = SSS::Create(2, 3);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(83);
  auto shares = scheme->Split(Bytes{7}, &rng);
  std::vector<std::vector<ShamirShare>> sets = {
      {shares[0], shares[1]}};
  EXPECT_TRUE(scheme->ReconstructBatch(sets, {1, 1}, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace bcfl::crypto
