#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bcfl {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(4);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(8);
  const size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i]++; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.ParallelFor(0, [&](size_t) { ran = true; }, /*grain=*/64);
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForExplicitGrainVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  // Grain that doesn't divide the count: the last chunk is a remainder.
  const size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i]++; }, /*grain=*/7);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanCountRunsInline) {
  ThreadPool pool(4);
  const size_t kN = 10;
  std::vector<int> counts(kN, 0);  // Unsynchronised: single chunk, inline.
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> on_caller{true};
  pool.ParallelFor(
      kN,
      [&](size_t i) {
        counts[i]++;
        if (std::this_thread::get_id() != caller) on_caller = false;
      },
      /*grain=*/64);
  EXPECT_TRUE(on_caller.load());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(ThreadPoolTest, ParallelForThrowingTaskPropagatesAndFinishesRest) {
  ThreadPool pool(4);
  const size_t kN = 256;
  std::vector<std::atomic<int>> visited(kN);
  auto body = [&](size_t i) {
    visited[i]++;
    if (i == 10) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.ParallelFor(kN, body, /*grain=*/1), std::runtime_error);
  // Grain 1: every other index ran despite the failing one.
  for (size_t i = 0; i < kN; ++i) {
    if (i != 10) {
      EXPECT_EQ(visited[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForManyIndicesFewChunks) {
  // 2^16 indices must not enqueue 2^16 closures; with auto grain the
  // whole sweep completes promptly and visits everything exactly once.
  ThreadPool pool(4);
  const size_t kN = 1 << 16;
  std::atomic<size_t> sum{0};
  pool.ParallelFor(kN, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (kN - 1) * kN / 2);
}

TEST(ThreadPoolTest, ManySubmissionsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  for (size_t i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.Submit([&done] { done++; return 0; });
    }
  }  // Destructor joins.
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace bcfl
