#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace bcfl {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(4);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(8);
  const size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i]++; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ManySubmissionsAllComplete) {
  ThreadPool pool(4);
  std::vector<std::future<size_t>> futures;
  for (size_t i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.Submit([&done] { done++; return 0; });
    }
  }  // Destructor joins.
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace bcfl
