#include "core/reward_contract.h"

#include <gtest/gtest.h>

#include "chain/contract_host.h"
#include "core/fl_contract.h"
#include "core/params.h"
#include "core/state_keys.h"

namespace bcfl::core {
namespace {

class RewardFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kOwners = 4;

  RewardFixture() : rng_(77) {
    for (uint32_t i = 0; i < kOwners; ++i) {
      keys_.push_back(schnorr_.GenerateKeyPair(&rng_));
    }
    params_.num_owners = kOwners;
    params_.rounds = 2;
    params_.num_groups = 2;
    params_.weight_rows = 3;
    params_.weight_cols = 2;
    for (uint32_t i = 0; i < kOwners; ++i) {
      params_.schnorr_public_keys.push_back(keys_[i].public_key);
      params_.dh_public_keys.push_back(crypto::UInt256(i + 500));
    }
    host_ = std::make_unique<chain::ContractHost>(schnorr_);
    EXPECT_TRUE(host_->Register(std::make_shared<RewardContract>()).ok());

    // Seed the state as FlContract would have left it after training.
    state_.Put(keys::SetupParams(), params_.Serialize());
    ByteWriter marker;
    marker.WriteU8(1);
    state_.Put(keys::RoundComplete(1), marker.Take());
    // SVs: owner 0 best, owner 3 negative (clamps to zero).
    (void)PutDouble(&state_, keys::TotalSv(0), 0.6);
    (void)PutDouble(&state_, keys::TotalSv(1), 0.3);
    (void)PutDouble(&state_, keys::TotalSv(2), 0.1);
    (void)PutDouble(&state_, keys::TotalSv(3), -0.2);
  }

  chain::Transaction Tx(const std::string& method, Bytes payload,
                        uint32_t signer, uint64_t nonce) {
    chain::Transaction tx;
    tx.contract = "reward";
    tx.method = method;
    tx.payload = std::move(payload);
    tx.nonce = nonce;
    tx.Sign(schnorr_, keys_[signer], &rng_);
    return tx;
  }

  bool Exec(const chain::Transaction& tx) {
    auto receipt = host_->ExecuteTransaction(tx, &state_);
    EXPECT_TRUE(receipt.ok());
    return receipt->success;
  }

  crypto::Schnorr schnorr_;
  Xoshiro256 rng_;
  std::vector<crypto::SchnorrKeyPair> keys_;
  SetupParams params_;
  std::unique_ptr<chain::ContractHost> host_;
  chain::ContractState state_;
};

TEST_F(RewardFixture, FundAccumulates) {
  EXPECT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(1000), 0, 1)));
  EXPECT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(500), 1, 2)));
  EXPECT_EQ(ReadU64OrZero(state_, RewardContract::PoolKey()), 1500u);
}

TEST_F(RewardFixture, FundRejectsZeroAndGarbage) {
  EXPECT_FALSE(Exec(Tx("fund", RewardContract::EncodeFund(0), 0, 1)));
  EXPECT_FALSE(Exec(Tx("fund", Bytes{1, 2}, 0, 2)));
}

TEST_F(RewardFixture, DistributeSplitsProportionallyAndExactly) {
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(1000), 0, 1)));
  ASSERT_TRUE(Exec(Tx("distribute", {}, 0, 2)));

  // Positive scores 0.6 / 0.3 / 0.1 of total 1.0; owner 3 clamped to 0.
  uint64_t a0 = ReadU64OrZero(state_, RewardContract::AllocationKey(0));
  uint64_t a1 = ReadU64OrZero(state_, RewardContract::AllocationKey(1));
  uint64_t a2 = ReadU64OrZero(state_, RewardContract::AllocationKey(2));
  uint64_t a3 = ReadU64OrZero(state_, RewardContract::AllocationKey(3));
  EXPECT_EQ(a0, 600u);
  EXPECT_EQ(a1, 300u);
  EXPECT_EQ(a2, 100u);
  EXPECT_EQ(a3, 0u);
  EXPECT_EQ(a0 + a1 + a2 + a3, 1000u);  // No dust lost.
}

TEST_F(RewardFixture, DustGoesToLargestRemainders) {
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(1001), 0, 1)));
  ASSERT_TRUE(Exec(Tx("distribute", {}, 0, 2)));
  uint64_t total = 0;
  for (uint32_t i = 0; i < kOwners; ++i) {
    total += ReadU64OrZero(state_, RewardContract::AllocationKey(i));
  }
  EXPECT_EQ(total, 1001u);
}

TEST_F(RewardFixture, DistributeRequiresFundsAndCompletion) {
  // No funds yet.
  EXPECT_FALSE(Exec(Tx("distribute", {}, 0, 1)));
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(100), 0, 2)));
  // Remove the completion marker: distribution must now fail.
  state_.Delete(keys::RoundComplete(1));
  EXPECT_FALSE(Exec(Tx("distribute", {}, 0, 3)));
}

TEST_F(RewardFixture, DoubleDistributeFails) {
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(100), 0, 1)));
  ASSERT_TRUE(Exec(Tx("distribute", {}, 0, 2)));
  EXPECT_FALSE(Exec(Tx("distribute", {}, 0, 3)));
  // Late funding is also locked out.
  EXPECT_FALSE(Exec(Tx("fund", RewardContract::EncodeFund(5), 0, 4)));
}

TEST_F(RewardFixture, ClaimRequiresOwnKeyAndHappensOnce) {
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(1000), 0, 1)));
  ASSERT_TRUE(Exec(Tx("distribute", {}, 0, 2)));

  // Owner 1 cannot claim owner 0's allocation.
  EXPECT_FALSE(Exec(Tx("claim", RewardContract::EncodeClaim(0), 1, 3)));
  // Owner 0 claims its own.
  EXPECT_TRUE(Exec(Tx("claim", RewardContract::EncodeClaim(0), 0, 4)));
  EXPECT_EQ(ReadU64OrZero(state_, RewardContract::ClaimedKey(0)), 600u);
  // Double claim fails.
  EXPECT_FALSE(Exec(Tx("claim", RewardContract::EncodeClaim(0), 0, 5)));
}

TEST_F(RewardFixture, ClaimBeforeDistributionFails) {
  EXPECT_FALSE(Exec(Tx("claim", RewardContract::EncodeClaim(0), 0, 1)));
}

TEST_F(RewardFixture, AllZeroScoresSplitEvenly) {
  for (uint32_t i = 0; i < kOwners; ++i) {
    (void)PutDouble(&state_, keys::TotalSv(i), -1.0);
  }
  ASSERT_TRUE(Exec(Tx("fund", RewardContract::EncodeFund(100), 0, 1)));
  ASSERT_TRUE(Exec(Tx("distribute", {}, 0, 2)));
  EXPECT_EQ(ReadU64OrZero(state_, RewardContract::AllocationKey(1)), 25u);
  uint64_t total = 0;
  for (uint32_t i = 0; i < kOwners; ++i) {
    total += ReadU64OrZero(state_, RewardContract::AllocationKey(i));
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(RewardFixture, UnknownMethodFails) {
  EXPECT_FALSE(Exec(Tx("steal", {}, 0, 1)));
}

}  // namespace
}  // namespace bcfl::core
