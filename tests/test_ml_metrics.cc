#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace bcfl::ml {
namespace {

TEST(AccuracyTest, HandComputed) {
  auto acc = AccuracyScore({0, 1, 2, 1}, {0, 1, 1, 1});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 0.75);
}

TEST(AccuracyTest, PerfectAndZero) {
  EXPECT_DOUBLE_EQ(*AccuracyScore({1, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(*AccuracyScore({0, 0}, {1, 1}), 0.0);
}

TEST(AccuracyTest, RejectsMismatchedOrEmpty) {
  EXPECT_FALSE(AccuracyScore({1}, {1, 2}).ok());
  EXPECT_FALSE(AccuracyScore({}, {}).ok());
}

TEST(ConfusionMatrixTest, CountsByTrueAndPredicted) {
  auto cm = ConfusionMatrix({0, 1, 1, 2}, {0, 1, 2, 2}, 3);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->At(0, 0), 1.0);  // True 0 predicted 0.
  EXPECT_EQ(cm->At(1, 1), 1.0);  // True 1 predicted 1.
  EXPECT_EQ(cm->At(2, 1), 1.0);  // True 2 predicted 1.
  EXPECT_EQ(cm->At(2, 2), 1.0);
  double total = 0;
  for (double v : cm->data()) total += v;
  EXPECT_EQ(total, 4.0);
}

TEST(ConfusionMatrixTest, RejectsBadInput) {
  EXPECT_FALSE(ConfusionMatrix({0}, {0, 1}, 2).ok());
  EXPECT_FALSE(ConfusionMatrix({0}, {0}, 0).ok());
  EXPECT_TRUE(ConfusionMatrix({5}, {0}, 2).status().IsOutOfRange());
}

TEST(MacroF1Test, PerfectPredictionsScoreOne) {
  auto f1 = MacroF1({0, 1, 2}, {0, 1, 2}, 3);
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 1.0);
}

TEST(MacroF1Test, HandComputedBinaryCase) {
  // Predictions: [1,1,0,0], labels: [1,0,1,0].
  // Class 0: tp=1, fp=1, fn=1 -> F1 = 2/4 = 0.5. Class 1 same.
  auto f1 = MacroF1({1, 1, 0, 0}, {1, 0, 1, 0}, 2);
  ASSERT_TRUE(f1.ok());
  EXPECT_DOUBLE_EQ(*f1, 0.5);
}

TEST(MacroF1Test, AbsentClassContributesZero) {
  // Class 2 never appears: its F1 term is 0, dragging down the macro.
  auto f1 = MacroF1({0, 1}, {0, 1}, 3);
  ASSERT_TRUE(f1.ok());
  EXPECT_NEAR(*f1, 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace bcfl::ml
