// The parallel round engine's contract: bit-identical chain content,
// SV values and ledger counters for any pool size, a working serial
// escape hatch, and a scratch arena that really is reusable.

#include "core/round_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "obs/json_reader.h"
#include "obs/round_ledger.h"

namespace bcfl::core {
namespace {

BcflConfig EngineConfig() {
  BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 3;
  config.rounds = 2;
  config.num_groups = 2;
  config.seed = 21;
  config.seed_e = 5;
  config.sigma = 0.0;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 400;
  return config;
}

Result<BcflRunResult> RunWith(BcflConfig config, crypto::Digest* tip_hash) {
  auto coordinator = BcflCoordinator::Create(config);
  if (!coordinator.ok()) return coordinator.status();
  auto result = (*coordinator)->Run();
  if (result.ok() && tip_hash != nullptr) {
    *tip_hash = (*coordinator)->engine().CanonicalChain().Tip().header.Hash();
  }
  return result;
}

TEST(RoundEngineTest, ModeNames) {
  EXPECT_STREQ(RoundEngineModeName(RoundEngineMode::kSerial), "serial");
  EXPECT_STREQ(RoundEngineModeName(RoundEngineMode::kParallel), "parallel");
}

TEST(RoundEngineTest, ReferenceEnvForcesSerial) {
  unsetenv("BCFL_ROUND_REFERENCE");
  EXPECT_EQ(ResolveRoundEngineMode(RoundEngineMode::kParallel),
            RoundEngineMode::kParallel);
  setenv("BCFL_ROUND_REFERENCE", "0", 1);
  EXPECT_EQ(ResolveRoundEngineMode(RoundEngineMode::kParallel),
            RoundEngineMode::kParallel);
  setenv("BCFL_ROUND_REFERENCE", "", 1);
  EXPECT_EQ(ResolveRoundEngineMode(RoundEngineMode::kParallel),
            RoundEngineMode::kParallel);
  setenv("BCFL_ROUND_REFERENCE", "1", 1);
  EXPECT_EQ(ResolveRoundEngineMode(RoundEngineMode::kParallel),
            RoundEngineMode::kSerial);
  EXPECT_EQ(ResolveRoundEngineMode(RoundEngineMode::kSerial),
            RoundEngineMode::kSerial);
  unsetenv("BCFL_ROUND_REFERENCE");
}

TEST(RoundEngineTest, ReferenceEnvAppliesAtCreate) {
  setenv("BCFL_ROUND_REFERENCE", "1", 1);
  auto coordinator = BcflCoordinator::Create(EngineConfig());
  unsetenv("BCFL_ROUND_REFERENCE");
  ASSERT_TRUE(coordinator.ok());
  EXPECT_EQ((*coordinator)->round_engine_mode(), RoundEngineMode::kSerial);
  EXPECT_EQ((*coordinator)->pool_threads_in_use(), 1u);
  // And the overridden run still works end to end.
  EXPECT_TRUE((*coordinator)->Run().ok());
}

TEST(RoundEngineTest, ScratchResetKeepsBufferStorage) {
  RoundScratch scratch;
  scratch.Reset(3);
  ASSERT_EQ(scratch.slots.size(), 3u);
  scratch.slots[1].active = true;
  scratch.slots[1].encoded.assign(650, 7);
  scratch.slots[1].masked.assign(650, 9);
  scratch.slots[1].payload.assign(5000, 1);
  scratch.slots[1].group_members = {0, 1};
  scratch.slots[1].train_us = 123.0;
  const size_t encoded_cap = scratch.slots[1].encoded.capacity();
  const size_t masked_cap = scratch.slots[1].masked.capacity();
  const size_t payload_cap = scratch.slots[1].payload.capacity();
  const uint64_t* encoded_data = scratch.slots[1].encoded.data();

  scratch.Reset(3);
  // Per-round state cleared...
  EXPECT_FALSE(scratch.slots[1].active);
  EXPECT_TRUE(scratch.slots[1].group_members.empty());
  EXPECT_EQ(scratch.slots[1].train_us, 0.0);
  // ...but the buffers keep their storage: no churn from round 2 on.
  EXPECT_GE(scratch.slots[1].encoded.capacity(), encoded_cap);
  EXPECT_GE(scratch.slots[1].masked.capacity(), masked_cap);
  EXPECT_GE(scratch.slots[1].payload.capacity(), payload_cap);
  EXPECT_EQ(scratch.slots[1].encoded.data(), encoded_data);
}

TEST(RoundEngineTest, ChainContentIsPoolSizeInvariant) {
  // The tentpole guarantee: serial and parallel-at-any-pool-size runs
  // produce the same SV values, the same global model and the same
  // canonical chain, block for block.
  BcflConfig config = EngineConfig();
  config.round_engine = RoundEngineMode::kSerial;
  crypto::Digest serial_tip;
  auto serial = RunWith(config, &serial_tip);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : {1u, 2u, 8u}) {
    BcflConfig parallel_config = EngineConfig();
    parallel_config.round_engine = RoundEngineMode::kParallel;
    parallel_config.pool_threads = threads;
    crypto::Digest parallel_tip;
    auto parallel = RunWith(parallel_config, &parallel_tip);
    ASSERT_TRUE(parallel.ok()) << "pool_threads=" << threads;
    EXPECT_EQ(serial->total_sv, parallel->total_sv)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial->per_round_sv, parallel->per_round_sv)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial->global_weights, parallel->global_weights)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial->round_accuracies, parallel->round_accuracies)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial->blocks_committed, parallel->blocks_committed)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial->total_transactions, parallel->total_transactions)
        << "pool_threads=" << threads;
    EXPECT_EQ(serial_tip, parallel_tip) << "pool_threads=" << threads;
  }
}

std::vector<obs::JsonValue> ReadLedger(const std::string& path) {
  std::vector<obs::JsonValue> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto value = obs::ParseJson(line);
    EXPECT_TRUE(value.ok()) << line;
    if (value.ok()) records.push_back(std::move(value).value());
  }
  return records;
}

Result<BcflRunResult> RunWithLedger(BcflConfig config,
                                    const std::string& ledger_path) {
  auto coordinator = BcflCoordinator::Create(config);
  if (!coordinator.ok()) return coordinator.status();
  obs::RoundLedger ledger;
  BCFL_RETURN_IF_ERROR(ledger.Open(ledger_path));
  (*coordinator)->set_round_ledger(&ledger);
  return (*coordinator)->Run();
}

TEST(RoundEngineTest, LedgerCountersArePoolSizeInvariant) {
  // Phase *timings* differ by construction (the parallel ledger carries
  // the extra owner_fanout wall); every protocol-visible counter — the
  // SV vector, dropouts, recoveries, fault events, sig-cache lookups,
  // blocks, transactions — must not.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string serial_path = (dir / "bcfl_re_ledger_serial.jsonl").string();
  const std::string parallel_path =
      (dir / "bcfl_re_ledger_parallel.jsonl").string();

  BcflConfig config = EngineConfig();
  config.rounds = 3;
  config.fault_plan = *fault::FaultPlan::Parse("crash owner 2 @1");
  config.round_engine = RoundEngineMode::kSerial;
  ASSERT_TRUE(RunWithLedger(config, serial_path).ok());
  config.round_engine = RoundEngineMode::kParallel;
  config.pool_threads = 4;
  ASSERT_TRUE(RunWithLedger(config, parallel_path).ok());

  auto serial = ReadLedger(serial_path);
  auto parallel = ReadLedger(parallel_path);
  std::filesystem::remove(serial_path);
  std::filesystem::remove(parallel_path);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);

  auto render = [](const obs::JsonValue& v) {
    std::ostringstream out;
    out.precision(17);
    if (v.is_number()) {
      out << v.number;
    } else if (v.is_string()) {
      out << v.string;
    } else if (v.is_array()) {
      for (const auto& e : v.array) {
        out << (e.is_number() ? std::to_string(e.number) : e.string) << ",";
      }
    }
    return out.str();
  };
  for (size_t r = 0; r < 3; ++r) {
    for (const char* key : {"round", "sv", "dropouts", "recovered",
                            "fault_events", "sig_cache_lookups", "accuracy",
                            "blocks_committed", "transactions"}) {
      const auto* lhs = serial[r].Find(key);
      const auto* rhs = parallel[r].Find(key);
      ASSERT_NE(lhs, nullptr) << key;
      ASSERT_NE(rhs, nullptr) << key;
      EXPECT_EQ(render(*lhs), render(*rhs)) << "round " << r << " " << key;
    }
    // Both modes report the aggregate train wall under the same key; the
    // fan-out wall is a parallel-only addition.
    const auto* serial_phases = serial[r].Find("phase_us");
    const auto* parallel_phases = parallel[r].Find("phase_us");
    ASSERT_NE(serial_phases, nullptr);
    ASSERT_NE(parallel_phases, nullptr);
    EXPECT_NE(serial_phases->Find("train"), nullptr);
    EXPECT_NE(parallel_phases->Find("train"), nullptr);
    EXPECT_EQ(serial_phases->Find("owner_fanout"), nullptr);
    EXPECT_NE(parallel_phases->Find("owner_fanout"), nullptr);
  }
}

TEST(RoundEngineTest, DefaultConfigUsesParallelEngine) {
  unsetenv("BCFL_ROUND_REFERENCE");
  BcflConfig config = EngineConfig();
  config.pool_threads = 2;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  EXPECT_EQ((*coordinator)->round_engine_mode(), RoundEngineMode::kParallel);
  EXPECT_EQ((*coordinator)->pool_threads_in_use(), 2u);
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  // Local-model retention stays opt-in on the parallel path too.
  EXPECT_TRUE(result->per_round_locals.empty());
}

}  // namespace
}  // namespace bcfl::core
