#include "shapley/shapley_math.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "common/rng.h"

namespace bcfl::shapley {
namespace {

TEST(BinomialTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(Binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Binomial(9, 4), 126.0);
  EXPECT_DOUBLE_EQ(Binomial(3, 7), 0.0);
}

TEST(ExactShapleyTest, AdditiveGameGivesIndividualValues) {
  // u(S) = sum of member weights: SV_i must equal weight_i exactly.
  const std::vector<double> weights = {1.0, 4.0, 2.5};
  auto utility = [&](uint64_t mask) -> Result<double> {
    double total = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (mask & (1ULL << i)) total += weights[i];
    }
    return total;
  };
  auto values = ExactShapley(3, utility);
  ASSERT_TRUE(values.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*values)[i], weights[i], 1e-12);
  }
}

TEST(ExactShapleyTest, GloveGame) {
  // Classic: players 0,1 hold left gloves, player 2 a right glove.
  // u(S) = 1 iff S has at least one of {0,1} AND player 2.
  // Known SVs: (1/6, 1/6, 4/6).
  auto utility = [](uint64_t mask) -> Result<double> {
    bool left = (mask & 0b011) != 0;
    bool right = (mask & 0b100) != 0;
    return left && right ? 1.0 : 0.0;
  };
  auto values = ExactShapley(3, utility);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], 1.0 / 6, 1e-12);
  EXPECT_NEAR((*values)[1], 1.0 / 6, 1e-12);
  EXPECT_NEAR((*values)[2], 4.0 / 6, 1e-12);
}

TEST(ExactShapleyTest, DummyPlayerGetsZero) {
  // Player 1 never changes utility.
  auto utility = [](uint64_t mask) -> Result<double> {
    return (mask & 0b101) == 0b101 ? 10.0 : 0.0;
  };
  auto values = ExactShapley(3, utility);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[1], 0.0, 1e-12);
  EXPECT_NEAR((*values)[0], 5.0, 1e-12);
  EXPECT_NEAR((*values)[2], 5.0, 1e-12);
}

TEST(ExactShapleyTest, SymmetricPlayersGetEqualValues) {
  // u(S) = |S|^2: all players symmetric.
  auto utility = [](uint64_t mask) -> Result<double> {
    double s = static_cast<double>(std::popcount(mask));
    return s * s;
  };
  auto values = ExactShapley(4, utility);
  ASSERT_TRUE(values.ok());
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR((*values)[i], (*values)[0], 1e-12);
  }
}

class RandomGameTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGameTest, EfficiencyAxiomHolds) {
  // sum_i SV_i == u(grand) - u(empty) for arbitrary games.
  Xoshiro256 rng(GetParam());
  const size_t n = 6;
  std::vector<double> table(1ULL << n);
  for (auto& u : table) u = rng.NextDouble() * 10;
  auto values = ExactShapleyFromTable(n, table);
  ASSERT_TRUE(values.ok());
  double sum = 0;
  for (double v : *values) sum += v;
  EXPECT_NEAR(sum, table.back() - table.front(), 1e-9);
  auto check = CheckEfficiency(*values, table.back(), table.front(), 1e-9);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(*check);
}

TEST_P(RandomGameTest, AdditivityAxiomHolds) {
  // SV(u + w) == SV(u) + SV(w).
  Xoshiro256 rng(GetParam() + 50);
  const size_t n = 5;
  std::vector<double> u(1ULL << n), w(1ULL << n), uw(1ULL << n);
  for (size_t i = 0; i < u.size(); ++i) {
    u[i] = rng.NextDouble();
    w[i] = rng.NextDouble();
    uw[i] = u[i] + w[i];
  }
  auto su = ExactShapleyFromTable(n, u);
  auto sw = ExactShapleyFromTable(n, w);
  auto suw = ExactShapleyFromTable(n, uw);
  ASSERT_TRUE(su.ok());
  ASSERT_TRUE(sw.ok());
  ASSERT_TRUE(suw.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*suw)[i], (*su)[i] + (*sw)[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGameTest,
                         ::testing::Values(1, 2, 3, 42, 99));

TEST(ExactShapleyTest, RejectsBadArguments) {
  EXPECT_FALSE(ExactShapleyFromTable(0, {}).ok());
  EXPECT_FALSE(ExactShapleyFromTable(21, std::vector<double>(8)).ok());
  EXPECT_FALSE(ExactShapleyFromTable(3, std::vector<double>(7)).ok());
}

TEST(ExactShapleyTest, PropagatesUtilityErrors) {
  auto utility = [](uint64_t mask) -> Result<double> {
    if (mask == 3) return Status::Internal("utility blew up");
    return 0.0;
  };
  EXPECT_TRUE(ExactShapley(2, utility).status().IsInternal());
}

TEST(CheckEfficiencyTest, DetectsViolation) {
  auto violated = CheckEfficiency({1.0, 1.0}, 5.0, 0.0, 1e-9);
  ASSERT_TRUE(violated.ok());
  EXPECT_FALSE(*violated);
  EXPECT_FALSE(CheckEfficiency({}, 0, 0).ok());
}

TEST(ExactShapleyTest, SingletonGame) {
  auto utility = [](uint64_t mask) -> Result<double> {
    return mask ? 7.0 : 2.0;
  };
  auto values = ExactShapley(1, utility);
  ASSERT_TRUE(values.ok());
  EXPECT_NEAR((*values)[0], 5.0, 1e-12);
}

}  // namespace
}  // namespace bcfl::shapley
