#include "privacy/ldp_fl.h"

#include <gtest/gtest.h>

#include "data/digits.h"
#include "data/partition.h"

namespace bcfl::privacy {
namespace {

std::vector<fl::FlClient> MakeClients(size_t n, size_t instances,
                                      uint64_t seed,
                                      ml::Dataset* test_out) {
  data::DigitsConfig config;
  config.num_instances = instances;
  config.seed = seed;
  ml::Dataset full = data::DigitsGenerator(config).Generate();
  Xoshiro256 rng(seed);
  auto split = full.TrainTestSplit(0.8, &rng).value();
  *test_out = std::move(split.second);
  auto parts = data::PartitionUniform(split.first, n, &rng).value();
  ml::LogisticRegressionConfig lr;
  lr.learning_rate = 0.05;
  lr.epochs = 3;
  std::vector<fl::FlClient> clients;
  for (size_t i = 0; i < n; ++i) {
    clients.emplace_back(static_cast<fl::OwnerId>(i), std::move(parts[i]),
                         lr);
  }
  return clients;
}

LdpFlConfig BaseConfig() {
  LdpFlConfig config;
  config.fl.rounds = 5;
  config.fl.local.learning_rate = 0.05;
  config.fl.local.epochs = 3;
  config.per_round = {1.0, 1e-5};
  config.clip_norm = 1.0;
  return config;
}

TEST(LdpFlTest, RunsAndAccountsPrivacy) {
  ml::Dataset test;
  auto clients = MakeClients(3, 600, 1, &test);
  LdpFederatedTrainer trainer(std::move(clients), BaseConfig());
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_round_globals.size(), 5u);
  // 5 rounds x 3 clients = 15 releases of eps=1 each.
  EXPECT_NEAR(result->total_basic.epsilon, 15.0, 1e-9);
  EXPECT_GT(result->total_advanced.epsilon, 0.0);
}

TEST(LdpFlTest, NoClientsFails) {
  LdpFederatedTrainer trainer({}, BaseConfig());
  EXPECT_TRUE(trainer.Run().status().IsFailedPrecondition());
}

TEST(LdpFlTest, LooseBudgetApproachesNoiselessAccuracy) {
  // eps = 1000 per round: the noise is negligible, so LDP-FL should be
  // close to plain FL.
  ml::Dataset test;
  auto clients = MakeClients(3, 1200, 2, &test);

  LdpFlConfig loose = BaseConfig();
  loose.fl.rounds = 8;
  loose.per_round = {1000.0, 1e-5};
  LdpFederatedTrainer trainer(std::move(clients), loose);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  auto model = ml::LogisticRegression::FromWeights(result->global_weights);
  ASSERT_TRUE(model.ok());
  auto acc = model->Accuracy(test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.5);
}

TEST(LdpFlTest, TightBudgetDestroysUtility) {
  // The paper's related-work claim (Sect. II-B): accumulated LDP noise
  // makes the model "not very useful". eps = 0.05 per round should push
  // accuracy toward chance while the loose-budget run (above) learns.
  ml::Dataset test;
  auto clients = MakeClients(3, 1200, 2, &test);

  LdpFlConfig tight = BaseConfig();
  tight.fl.rounds = 8;
  tight.per_round = {0.05, 1e-5};
  LdpFederatedTrainer trainer(std::move(clients), tight);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  auto model = ml::LogisticRegression::FromWeights(result->global_weights);
  ASSERT_TRUE(model.ok());
  auto acc = model->Accuracy(test);
  ASSERT_TRUE(acc.ok());
  EXPECT_LT(*acc, 0.5);
}

TEST(LdpFlTest, MonotoneUtilityInEpsilon) {
  ml::Dataset test;
  double prev_acc = -1.0;
  for (double eps : {0.05, 1.0, 100.0}) {
    auto clients = MakeClients(3, 1200, 3, &test);
    LdpFlConfig config = BaseConfig();
    config.fl.rounds = 6;
    config.per_round = {eps, 1e-5};
    LdpFederatedTrainer trainer(std::move(clients), config);
    auto result = trainer.Run();
    ASSERT_TRUE(result.ok());
    auto model =
        ml::LogisticRegression::FromWeights(result->global_weights);
    auto acc = model->Accuracy(test);
    ASSERT_TRUE(acc.ok());
    // Allow small non-monotonicity from noise, but the overall trend
    // must rise substantially.
    EXPECT_GT(*acc, prev_acc - 0.05) << "eps " << eps;
    prev_acc = *acc;
  }
  EXPECT_GT(prev_acc, 0.45);
}

}  // namespace
}  // namespace bcfl::privacy
