#include "crypto/uint256.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcfl::crypto {
namespace {

TEST(UInt256Test, ZeroAndU64Construction) {
  UInt256 zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0);

  UInt256 v(0xdeadbeefULL);
  EXPECT_FALSE(v.IsZero());
  EXPECT_EQ(v.ToU64(), 0xdeadbeefULL);
  EXPECT_EQ(v.BitLength(), 32);
}

TEST(UInt256Test, HexRoundTrip) {
  auto v = UInt256::FromHex("deadbeef00112233");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(),
            "000000000000000000000000000000000000000000000000deadbeef00112233");
  // 65 hex digits overflow.
  std::string too_long(65, 'f');
  EXPECT_FALSE(UInt256::FromHex(too_long).ok());
  // 64 f's is the maximum value and parses fine.
  std::string max_hex(64, 'f');
  auto max = UInt256::FromHex(max_hex);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->ToHex(), max_hex);
}

TEST(UInt256Test, FromHexRejectsBadInput) {
  EXPECT_FALSE(UInt256::FromHex("").ok());
  EXPECT_FALSE(UInt256::FromHex("xyz").ok());
}

TEST(UInt256Test, BytesRoundTrip) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    UInt256 v(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    Bytes bytes = v.ToBytes();
    ASSERT_EQ(bytes.size(), 32u);
    auto back = UInt256::FromBytes(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(UInt256Test, FromBytesRejectsWrongSize) {
  EXPECT_FALSE(UInt256::FromBytes(Bytes(31)).ok());
  EXPECT_FALSE(UInt256::FromBytes(Bytes(33)).ok());
}

TEST(UInt256Test, ComparisonOrdering) {
  UInt256 small(5);
  UInt256 big(0, 1, 0, 0);  // 2^64.
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_LE(small, small);
  EXPECT_EQ(small, UInt256(5));
  EXPECT_NE(small, big);
}

TEST(UInt256Test, AddCarriesAcrossLimbs) {
  UInt256 max_limb(~0ULL);
  bool carry = false;
  UInt256 sum = max_limb.Add(UInt256(1), &carry);
  EXPECT_FALSE(carry);
  EXPECT_EQ(sum, UInt256(0, 1, 0, 0));
}

TEST(UInt256Test, AddOverflowSetsCarry) {
  UInt256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  bool carry = false;
  UInt256 sum = max.Add(UInt256(1), &carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(sum.IsZero());
}

TEST(UInt256Test, SubBorrowsAcrossLimbs) {
  UInt256 v(0, 1, 0, 0);  // 2^64.
  bool borrow = false;
  UInt256 diff = v.Sub(UInt256(1), &borrow);
  EXPECT_FALSE(borrow);
  EXPECT_EQ(diff, UInt256(~0ULL));
}

TEST(UInt256Test, SubUnderflowSetsBorrow) {
  bool borrow = false;
  UInt256 diff = UInt256(0).Sub(UInt256(1), &borrow);
  EXPECT_TRUE(borrow);
  EXPECT_EQ(diff, UInt256(~0ULL, ~0ULL, ~0ULL, ~0ULL));
}

class UInt256PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UInt256PropertyTest, AddSubInverse) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    UInt256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    UInt256 b(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    EXPECT_EQ(a.Add(b).Sub(b), a);
  }
}

TEST_P(UInt256PropertyTest, MulWideMatchesInt128ForSmallOperands) {
  Xoshiro256 rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    uint64_t a64 = rng.Next();
    uint64_t b64 = rng.Next();
    auto wide = MulWide(UInt256(a64), UInt256(b64));
    unsigned __int128 expected =
        static_cast<unsigned __int128>(a64) * b64;
    EXPECT_EQ(wide[0], static_cast<uint64_t>(expected));
    EXPECT_EQ(wide[1], static_cast<uint64_t>(expected >> 64));
    for (int limb = 2; limb < 8; ++limb) EXPECT_EQ(wide[limb], 0u);
  }
}

TEST_P(UInt256PropertyTest, ModMatchesU64Arithmetic) {
  Xoshiro256 rng(GetParam() + 2);
  for (int i = 0; i < 100; ++i) {
    uint64_t a64 = rng.Next();
    uint64_t m64 = rng.Next() | 1;  // Avoid zero.
    EXPECT_EQ(UInt256(a64).Mod(UInt256(m64)).ToU64(), a64 % m64);
  }
}

TEST_P(UInt256PropertyTest, ModMulMatchesU64Arithmetic) {
  Xoshiro256 rng(GetParam() + 3);
  for (int i = 0; i < 100; ++i) {
    uint64_t m64 = (rng.Next() >> 1) | 1;
    uint64_t a64 = rng.Next() % m64;
    uint64_t b64 = rng.Next() % m64;
    unsigned __int128 expected =
        static_cast<unsigned __int128>(a64) * b64 % m64;
    EXPECT_EQ(UInt256(a64).ModMul(UInt256(b64), UInt256(m64)).ToU64(),
              static_cast<uint64_t>(expected));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UInt256PropertyTest,
                         ::testing::Values(10, 20, 30));

TEST(UInt256Test, ModAddWrapsCorrectly) {
  UInt256 m(100);
  EXPECT_EQ(UInt256(60).ModAdd(UInt256(70), m), UInt256(30));
  EXPECT_EQ(UInt256(10).ModAdd(UInt256(20), m), UInt256(30));
}

TEST(UInt256Test, ModSubWrapsCorrectly) {
  UInt256 m(100);
  EXPECT_EQ(UInt256(30).ModSub(UInt256(50), m), UInt256(80));
  EXPECT_EQ(UInt256(50).ModSub(UInt256(30), m), UInt256(20));
}

TEST(UInt256Test, ModPowSmallKnownValues) {
  UInt256 m(1000000007ULL);
  // 2^10 = 1024.
  EXPECT_EQ(UInt256(2).ModPow(UInt256(10), m), UInt256(1024));
  // Fermat: a^(p-1) == 1 mod p for prime p.
  EXPECT_EQ(UInt256(12345).ModPow(UInt256(1000000006ULL), m), UInt256(1));
  // a^0 == 1.
  EXPECT_EQ(UInt256(999).ModPow(UInt256(0), m), UInt256(1));
}

TEST(UInt256Test, ModPowHomomorphism) {
  // g^(x+y) == g^x * g^y (mod p) over the library's default 255-bit prime.
  UInt256 p(0xffffffffffffffedULL, ~0ULL, ~0ULL, 0x7fffffffffffffffULL);
  UInt256 g(2);
  Xoshiro256 rng(77);
  for (int i = 0; i < 10; ++i) {
    UInt256 x(rng.Next(), rng.Next(), 0, 0);
    UInt256 y(rng.Next(), rng.Next(), 0, 0);
    UInt256 lhs = g.ModPow(x.Add(y), p);
    UInt256 rhs = g.ModPow(x, p).ModMul(g.ModPow(y, p), p);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(UInt256PropertyTest, MontgomeryMulMatchesModMul) {
  Xoshiro256 rng(GetParam() + 4);
  for (int i = 0; i < 50; ++i) {
    // Random odd 256-bit modulus (top limb nonzero to exercise carries).
    UInt256 m(rng.Next() | 1, rng.Next(), rng.Next(), rng.Next() | 1);
    Montgomery mont(m);
    UInt256 a = UInt256(rng.Next(), rng.Next(), rng.Next(), rng.Next()).Mod(m);
    UInt256 b = UInt256(rng.Next(), rng.Next(), rng.Next(), rng.Next()).Mod(m);
    UInt256 expected = a.ModMul(b, m);
    UInt256 got = mont.FromMont(
        mont.Mul(mont.ToMont(a), mont.ToMont(b)));
    EXPECT_EQ(got, expected) << "m=" << m.ToHex();
  }
}

TEST_P(UInt256PropertyTest, MontgomeryModExpMatchesModPow) {
  Xoshiro256 rng(GetParam() + 5);
  for (int i = 0; i < 10; ++i) {
    UInt256 m(rng.Next() | 1, rng.Next(), rng.Next(), rng.Next() | 1);
    Montgomery mont(m);
    UInt256 base(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    UInt256 exp(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    EXPECT_EQ(mont.ModExp(base, exp), base.ModPow(exp, m));
  }
}

TEST_P(UInt256PropertyTest, FixedBaseTableMatchesModPow) {
  Xoshiro256 rng(GetParam() + 6);
  // The library's default 255-bit prime group.
  UInt256 p(0xffffffffffffffedULL, ~0ULL, ~0ULL, 0x7fffffffffffffffULL);
  Montgomery mont(p);
  UInt256 base(rng.Next(), rng.Next(), rng.Next(), rng.Next());
  FixedBaseTable table(mont, base);
  for (int i = 0; i < 10; ++i) {
    UInt256 exp(rng.Next(), rng.Next(), rng.Next(), rng.Next());
    EXPECT_EQ(table.Pow(exp), base.ModPow(exp, p));
  }
}

TEST(UInt256Test, MontgomeryExponentEdgeCases) {
  UInt256 p(0xffffffffffffffedULL, ~0ULL, ~0ULL, 0x7fffffffffffffffULL);
  Montgomery mont(p);
  UInt256 g(2);
  FixedBaseTable table(mont, g);
  UInt256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  // e = 0, 1, 2^256-1; base >= m reduced first.
  EXPECT_EQ(mont.ModExp(g, UInt256(0)), UInt256(1));
  EXPECT_EQ(table.Pow(UInt256(0)), UInt256(1));
  EXPECT_EQ(mont.ModExp(g, UInt256(1)), UInt256(2));
  EXPECT_EQ(table.Pow(UInt256(1)), UInt256(2));
  EXPECT_EQ(mont.ModExp(g, max), g.ModPow(max, p));
  EXPECT_EQ(table.Pow(max), g.ModPow(max, p));
  UInt256 big_base = p.Add(UInt256(7));
  EXPECT_EQ(mont.ModExp(big_base, UInt256(3)),
            big_base.ModPow(UInt256(3), p));
}

TEST(UInt256Test, MontgomerySmallOddModulus) {
  // 64-bit odd modulus: the CIOS carry chain degenerates but must still
  // agree with u64 arithmetic.
  Montgomery mont(UInt256(1000003));
  EXPECT_EQ(mont.ModExp(UInt256(2), UInt256(20)),
            UInt256((1u << 20) % 1000003));
  EXPECT_EQ(mont.ModExp(UInt256(123456789), UInt256(1000002)),
            UInt256(123456789).ModPow(UInt256(1000002), UInt256(1000003)));
}

TEST(UInt256Test, BitAccessAndLength) {
  auto v = UInt256::FromHex("8000000000000001");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Bit(0));
  EXPECT_TRUE(v->Bit(63));
  EXPECT_FALSE(v->Bit(1));
  EXPECT_EQ(v->BitLength(), 64);
}

TEST(UInt256Test, ShiftLeft1ReportsCarry) {
  UInt256 top(0, 0, 0, 0x8000000000000000ULL);
  EXPECT_TRUE(top.ShiftLeft1());
  EXPECT_TRUE(top.IsZero());

  UInt256 one(1);
  EXPECT_FALSE(one.ShiftLeft1());
  EXPECT_EQ(one, UInt256(2));
}

}  // namespace
}  // namespace bcfl::crypto
