#include "secureagg/session.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "secureagg/mask.h"

namespace bcfl::secureagg {
namespace {

std::vector<double> RandomUpdate(size_t len, Xoshiro256* rng) {
  std::vector<double> out(len);
  for (auto& v : out) v = rng->NextGaussian(0.0, 1.0);
  return out;
}

std::vector<double> PlainMean(const std::vector<std::vector<double>>& updates,
                              const std::vector<OwnerId>& members) {
  std::vector<double> mean(updates[0].size(), 0.0);
  for (OwnerId id : members) {
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += updates[id][i];
  }
  for (auto& v : mean) v /= static_cast<double>(members.size());
  return mean;
}

TEST(MaskTest, DeterministicAndRoundSeparated) {
  std::array<uint8_t, 32> key{};
  key[0] = 7;
  auto m1 = ExpandMask(key, 3, 10);
  auto m2 = ExpandMask(key, 3, 10);
  auto m3 = ExpandMask(key, 4, 10);
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);
  auto self = ExpandSelfMask(key, 3, 10);
  EXPECT_NE(m1, self);  // Domain separation.
}

TEST(ParticipantTest, PairKeysAgree) {
  crypto::DiffieHellman dh;
  Xoshiro256 rng(1);
  SecureAggParticipant a(0, dh, &rng), b(1, dh, &rng);
  ASSERT_TRUE(a.RegisterPeer(1, b.public_key()).ok());
  ASSERT_TRUE(b.RegisterPeer(0, a.public_key()).ok());
  auto ka = a.PairKey(1);
  auto kb = b.PairKey(0);
  ASSERT_TRUE(ka.ok());
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(*ka, *kb);
}

TEST(ParticipantTest, RejectsSelfAndBadKeys) {
  crypto::DiffieHellman dh;
  Xoshiro256 rng(2);
  SecureAggParticipant a(0, dh, &rng);
  EXPECT_TRUE(a.RegisterPeer(0, crypto::UInt256(5)).IsInvalidArgument());
  EXPECT_TRUE(
      a.RegisterPeer(1, crypto::UInt256(0)).IsInvalidArgument());
}

TEST(ParticipantTest, MaskUpdateRequiresMembershipAndKeys) {
  crypto::DiffieHellman dh;
  Xoshiro256 rng(3);
  SecureAggParticipant a(0, dh, &rng);
  std::vector<uint64_t> update(4, 1);
  // Not in group.
  EXPECT_TRUE(a.MaskUpdate(0, {1, 2}, update).status().IsInvalidArgument());
  // In group but peer 1 unregistered.
  EXPECT_TRUE(
      a.MaskUpdate(0, {0, 1}, update).status().IsFailedPrecondition());
}

TEST(PairwiseMaskingTest, MasksCancelExactlyWithinGroup) {
  // Paper-faithful pairwise-only masking: the ring sum of all masked
  // updates equals the ring sum of the plain updates bit-for-bit.
  crypto::DiffieHellman dh;
  Xoshiro256 rng(4);
  constexpr size_t kN = 5;
  constexpr size_t kLen = 64;
  std::vector<std::unique_ptr<SecureAggParticipant>> parts;
  for (size_t i = 0; i < kN; ++i) {
    parts.push_back(std::make_unique<SecureAggParticipant>(
        static_cast<OwnerId>(i), dh, &rng, /*use_self_mask=*/false));
  }
  for (auto& p : parts) {
    for (auto& q : parts) {
      if (p->id() != q->id()) {
        ASSERT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
      }
    }
  }
  std::vector<OwnerId> group = {0, 1, 2, 3, 4};
  std::vector<uint64_t> plain_sum(kLen, 0), masked_sum(kLen, 0);
  for (size_t i = 0; i < kN; ++i) {
    std::vector<uint64_t> update(kLen);
    for (auto& v : update) v = rng.Next();
    auto masked = parts[i]->MaskUpdate(7, group, update);
    ASSERT_TRUE(masked.ok());
    // An individual masked update must differ from the plain one.
    EXPECT_NE(*masked, update);
    for (size_t k = 0; k < kLen; ++k) {
      plain_sum[k] += update[k];
      masked_sum[k] += (*masked)[k];
    }
  }
  EXPECT_EQ(masked_sum, plain_sum);
}

TEST(PairwiseMaskingTest, PooledMaskUpdateBitIdenticalToSerial) {
  // Pair masks are expanded into per-peer slots and combined in group
  // order, so attaching a thread pool of any size must not change a
  // single ring word.
  crypto::DiffieHellman dh;
  Xoshiro256 rng(11);
  constexpr size_t kN = 6;
  std::vector<std::unique_ptr<SecureAggParticipant>> parts;
  for (size_t i = 0; i < kN; ++i) {
    parts.push_back(std::make_unique<SecureAggParticipant>(
        static_cast<OwnerId>(i), dh, &rng));
  }
  for (auto& p : parts) {
    for (auto& q : parts) {
      if (p->id() != q->id()) {
        ASSERT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
      }
    }
  }
  std::vector<OwnerId> group = {0, 1, 2, 3, 4, 5};
  std::vector<uint64_t> update(300);
  for (auto& v : update) v = rng.Next();

  auto serial = parts[2]->MaskUpdate(5, group, update);
  ASSERT_TRUE(serial.ok());
  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    parts[2]->SetPool(&pool);
    auto pooled = parts[2]->MaskUpdate(5, group, update);
    parts[2]->SetPool(nullptr);
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(*pooled, *serial) << workers << " workers";
  }
}

TEST(PairwiseMaskingTest, SubgroupMasksCancelOnlyWithinThatGroup) {
  crypto::DiffieHellman dh;
  Xoshiro256 rng(5);
  std::vector<std::unique_ptr<SecureAggParticipant>> parts;
  for (size_t i = 0; i < 4; ++i) {
    parts.push_back(std::make_unique<SecureAggParticipant>(
        static_cast<OwnerId>(i), dh, &rng, false));
  }
  for (auto& p : parts) {
    for (auto& q : parts) {
      if (p->id() != q->id()) {
        ASSERT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
      }
    }
  }
  // Groups {0,1} and {2,3}: each pair cancels independently.
  std::vector<uint64_t> u(8, 100);
  auto m0 = parts[0]->MaskUpdate(1, {0, 1}, u);
  auto m1 = parts[1]->MaskUpdate(1, {0, 1}, u);
  ASSERT_TRUE(m0.ok());
  ASSERT_TRUE(m1.ok());
  for (size_t k = 0; k < 8; ++k) {
    EXPECT_EQ((*m0)[k] + (*m1)[k], 200u);
  }
}

TEST(SessionTest, AggregateEqualsPlainMean) {
  auto session = SecureAggSession::Create(6, {});
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(6);
  std::vector<std::vector<double>> updates;
  for (int i = 0; i < 6; ++i) updates.push_back(RandomUpdate(32, &rng));

  std::vector<OwnerId> group = {0, 1, 2, 3, 4, 5};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : group) {
    auto masked = session->Submit(id, 0, group, updates[id]);
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  auto mean = session->AggregateGroupMean(0, group, submissions);
  ASSERT_TRUE(mean.ok());
  auto expected = PlainMean(updates, group);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*mean)[i], expected[i], 1e-5);
  }
}

TEST(SessionTest, PerGroupAggregationMatchesGroupMeans) {
  auto session = SecureAggSession::Create(6, {});
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(7);
  std::vector<std::vector<double>> updates;
  for (int i = 0; i < 6; ++i) updates.push_back(RandomUpdate(16, &rng));

  std::vector<std::vector<OwnerId>> groups = {{0, 2, 4}, {1, 3, 5}};
  for (const auto& group : groups) {
    std::map<OwnerId, std::vector<uint64_t>> submissions;
    for (OwnerId id : group) {
      auto masked = session->Submit(id, 2, group, updates[id]);
      ASSERT_TRUE(masked.ok());
      submissions[id] = *masked;
    }
    auto mean = session->AggregateGroupMean(2, group, submissions);
    ASSERT_TRUE(mean.ok());
    auto expected = PlainMean(updates, group);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*mean)[i], expected[i], 1e-5);
    }
  }
}

TEST(SessionTest, DropoutRecoveryRecoversGroupMean) {
  SessionConfig config;
  config.use_self_masks = true;
  auto session = SecureAggSession::Create(5, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(8);
  std::vector<std::vector<double>> updates;
  for (int i = 0; i < 5; ++i) updates.push_back(RandomUpdate(16, &rng));

  // Owner 3 masks but never submits (drops after masking others' view).
  std::vector<OwnerId> group = {0, 1, 2, 3, 4};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : group) {
    if (id == 3) continue;
    auto masked = session->Submit(id, 1, group, updates[id]);
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  auto mean = session->AggregateGroupMean(1, group, submissions, {3});
  ASSERT_TRUE(mean.ok());
  auto expected = PlainMean(updates, {0, 1, 2, 4});
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*mean)[i], expected[i], 1e-5);
  }
}

TEST(SessionTest, RecoveryFailsClosedDespiteEarlierCachedReveal) {
  // A reveal that succeeded with a small dropout set caches the secret;
  // a later reveal whose dropout set leaves fewer than `threshold` live
  // share-holders must still fail closed, not answer from the cache.
  SessionConfig config;
  config.use_self_masks = false;
  auto session = SecureAggSession::Create(5, config);  // threshold = 3
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(11);
  std::vector<OwnerId> all = {0, 1, 2, 3, 4};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : all) {
    if (id == 3) continue;
    auto masked = session->Submit(id, 1, all, RandomUpdate(8, &rng));
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  // Four share-holders survive (>= threshold): owner 3's key is revealed
  // and cached.
  ASSERT_TRUE(session->AggregateGroupMean(1, all, submissions, {3}).ok());

  // Next round only owner 0 is still online — one share-holder is below
  // the threshold, so recovering owner 3 again must fail.
  std::vector<OwnerId> pair = {0, 3};
  std::map<OwnerId, std::vector<uint64_t>> late;
  auto masked = session->Submit(0, 2, pair, RandomUpdate(8, &rng));
  ASSERT_TRUE(masked.ok());
  late[0] = *masked;
  EXPECT_FALSE(session->AggregateGroupMean(2, pair, late, {1, 2, 3, 4}).ok());
}

TEST(SessionTest, MissingRecoveryMaterialFailsLoudly) {
  // Pairwise-only session, dropped member, no recovery material -> the
  // aggregator must error rather than emit a silently corrupt sum.
  SessionConfig config;
  config.use_self_masks = false;
  auto session = SecureAggSession::Create(3, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(9);
  std::vector<OwnerId> group = {0, 1, 2};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : {0u, 1u}) {
    auto masked = session->Submit(id, 0, group, RandomUpdate(8, &rng));
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  // Without declaring the dropout, sums are garbage but the protocol
  // cannot detect it; declaring it without shares is an error. Here the
  // session *has* shares (Create distributes them), so recovery works;
  // verify instead that an unknown dropped id fails.
  auto bad = session->AggregateGroupMean(0, group, submissions, {7});
  EXPECT_FALSE(bad.ok());
}

TEST(SessionTest, SelfMasksRequireUnmaskingInfo) {
  // With self masks on, a raw ring sum (without seed reveal) differs
  // from the plain sum — the property that protects survivors.
  SessionConfig config;
  config.use_self_masks = true;
  auto session = SecureAggSession::Create(3, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(10);
  std::vector<std::vector<double>> updates;
  for (int i = 0; i < 3; ++i) updates.push_back(RandomUpdate(8, &rng));

  std::vector<OwnerId> group = {0, 1, 2};
  FixedPointCodec codec(config.fixed_point_bits);
  std::vector<uint64_t> masked_sum(8, 0), plain_sum(8, 0);
  for (OwnerId id : group) {
    auto masked = session->Submit(id, 0, group, updates[id]);
    ASSERT_TRUE(masked.ok());
    auto plain = codec.EncodeVector(updates[id]);
    for (size_t k = 0; k < 8; ++k) {
      masked_sum[k] += (*masked)[k];
      plain_sum[k] += plain[k];
    }
  }
  EXPECT_NE(masked_sum, plain_sum);
}

TEST(SessionTest, DropoutAndRecoveryCountersCountUniqueOwners) {
  auto& dropouts =
      obs::MetricsRegistry::Global().GetCounter("secureagg.dropouts");
  auto& recoveries =
      obs::MetricsRegistry::Global().GetCounter("secureagg.recoveries");
  const uint64_t dropouts_before = dropouts.Value();
  const uint64_t recoveries_before = recoveries.Value();

  SessionConfig config;
  config.use_self_masks = true;
  auto session = SecureAggSession::Create(5, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(12);
  std::vector<std::vector<double>> updates;
  for (int i = 0; i < 5; ++i) updates.push_back(RandomUpdate(16, &rng));

  std::vector<OwnerId> group = {0, 1, 2, 3, 4};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : group) {
    if (id == 3) continue;
    auto masked = session->Submit(id, 1, group, updates[id]);
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  ASSERT_TRUE(session->AggregateGroupMean(1, group, submissions, {3}).ok());
  EXPECT_EQ(dropouts.Value() - dropouts_before, 1u);
  EXPECT_EQ(recoveries.Value() - recoveries_before, 1u);

  // Double recovery: aggregating the same round again (a retry) reuses
  // the cached reconstruction — same mean, no double-counting.
  auto again = session->AggregateGroupMean(1, group, submissions, {3});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(dropouts.Value() - dropouts_before, 1u);
  EXPECT_EQ(recoveries.Value() - recoveries_before, 1u);
  auto expected = PlainMean(updates, {0, 1, 2, 4});
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR((*again)[i], expected[i], 1e-5);
  }
}

TEST(SessionTest, TwoDropoutsCountTwice) {
  auto& dropouts =
      obs::MetricsRegistry::Global().GetCounter("secureagg.dropouts");
  const uint64_t before = dropouts.Value();
  SessionConfig config;
  config.use_self_masks = true;
  auto session = SecureAggSession::Create(6, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(13);
  std::vector<OwnerId> group = {0, 1, 2, 3, 4, 5};
  std::map<OwnerId, std::vector<uint64_t>> submissions;
  for (OwnerId id : {0u, 1u, 3u, 5u}) {
    auto masked = session->Submit(id, 0, group, RandomUpdate(8, &rng));
    ASSERT_TRUE(masked.ok());
    submissions[id] = *masked;
  }
  ASSERT_TRUE(
      session->AggregateGroupMean(0, group, submissions, {2, 4}).ok());
  EXPECT_EQ(dropouts.Value() - before, 2u);
}

TEST(SessionTest, CreateRejectsDegenerateConfigs) {
  EXPECT_FALSE(SecureAggSession::Create(1, {}).ok());
  SessionConfig bad;
  bad.threshold = 10;
  EXPECT_FALSE(SecureAggSession::Create(3, bad).ok());
}

class SecureAggPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SecureAggPropertyTest, MeanMatchesPlainAcrossSeedsAndRounds) {
  SessionConfig config;
  config.seed = GetParam();
  auto session = SecureAggSession::Create(4, config);
  ASSERT_TRUE(session.ok());
  Xoshiro256 rng(GetParam() * 31 + 1);
  for (uint64_t round = 0; round < 3; ++round) {
    std::vector<std::vector<double>> updates;
    for (int i = 0; i < 4; ++i) updates.push_back(RandomUpdate(24, &rng));
    std::vector<OwnerId> group = {0, 1, 2, 3};
    std::map<OwnerId, std::vector<uint64_t>> submissions;
    for (OwnerId id : group) {
      auto masked = session->Submit(id, round, group, updates[id]);
      ASSERT_TRUE(masked.ok());
      submissions[id] = *masked;
    }
    auto mean = session->AggregateGroupMean(round, group, submissions);
    ASSERT_TRUE(mean.ok());
    auto expected = PlainMean(updates, group);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*mean)[i], expected[i], 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureAggPropertyTest,
                         ::testing::Values(1, 13, 77, 2026));

}  // namespace
}  // namespace bcfl::secureagg
