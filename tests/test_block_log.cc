#include "chain/block_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "chain/blockchain.h"
#include "common/rng.h"
#include "crypto/schnorr.h"

namespace bcfl::chain {
namespace {

class BlockLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bcfl_block_log_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string LogPath() const { return (dir_ / "blocks.log").string(); }

  /// Builds `count` signed blocks extending genesis (heights 1..count).
  std::vector<Block> MakeBlocks(size_t count) {
    Blockchain chain;
    crypto::Schnorr scheme;
    Xoshiro256 rng(11);
    auto key = scheme.GenerateKeyPair(&rng);
    std::vector<Block> blocks;
    for (size_t b = 0; b < count; ++b) {
      Block block;
      block.header.height = chain.Height() + 1;
      block.header.prev_hash = chain.Tip().header.Hash();
      block.header.timestamp_us = (b + 1) * 1000;
      Transaction tx;
      tx.contract = "c";
      tx.method = "m";
      tx.nonce = b;
      tx.Sign(scheme, key, &rng);
      block.txs.push_back(tx);
      block.header.merkle_root = block.ComputeMerkleRoot();
      EXPECT_TRUE(chain.Append(block).ok());
      blocks.push_back(std::move(block));
    }
    return blocks;
  }

  std::string ReadFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteFileBytes(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<long>(data.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(BlockLogTest, AppendReopenRoundTrip) {
  std::vector<Block> blocks = MakeBlocks(4);
  {
    auto log = BlockLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    EXPECT_EQ(log->tip_height(), 0u);
    for (const Block& block : blocks) ASSERT_TRUE(log->Append(block).ok());
    EXPECT_EQ(log->tip_height(), 4u);
  }
  auto reopened = BlockLog::Open(LogPath());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->tip_height(), 4u);
  EXPECT_FALSE(reopened->open_stats().tail_truncated);
  std::vector<Block> recovered = reopened->TakeRecoveredBlocks();
  ASSERT_EQ(recovered.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recovered[i].Serialize(), blocks[i].Serialize()) << i;
  }
  // Appending continues past the recovered tail.
  Blockchain chain;
  for (const Block& block : blocks) ASSERT_TRUE(chain.Append(block).ok());
  Block next;
  next.header.height = 5;
  next.header.prev_hash = chain.Tip().header.Hash();
  next.header.timestamp_us = 5000;
  next.header.merkle_root = next.ComputeMerkleRoot();
  EXPECT_TRUE(reopened->Append(next).ok());
  EXPECT_EQ(reopened->tip_height(), 5u);
}

TEST_F(BlockLogTest, RejectsOutOfOrderAppend) {
  std::vector<Block> blocks = MakeBlocks(3);
  auto log = BlockLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->Append(blocks[0]).ok());
  // Skipping a height and re-appending the same height must both fail.
  EXPECT_FALSE(log->Append(blocks[2]).ok());
  EXPECT_FALSE(log->Append(blocks[0]).ok());
  EXPECT_EQ(log->tip_height(), 1u);
}

TEST_F(BlockLogTest, TruncateToHeightDropsTail) {
  std::vector<Block> blocks = MakeBlocks(5);
  auto log = BlockLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  for (const Block& block : blocks) ASSERT_TRUE(log->Append(block).ok());
  ASSERT_TRUE(log->TruncateToHeight(2).ok());
  EXPECT_EQ(log->tip_height(), 2u);
  // Height 3 can be re-appended (a resumed run regenerates it).
  EXPECT_TRUE(log->Append(blocks[2]).ok());
  log->Close();

  auto reopened = BlockLog::Open(LogPath());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->tip_height(), 3u);
}

TEST_F(BlockLogTest, TruncateAboveTipIsRejected) {
  std::vector<Block> blocks = MakeBlocks(2);
  auto log = BlockLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  for (const Block& block : blocks) ASSERT_TRUE(log->Append(block).ok());
  EXPECT_FALSE(log->TruncateToHeight(3).ok());
  EXPECT_EQ(log->tip_height(), 2u);
}

TEST_F(BlockLogTest, EmptyFileGetsHeaderOnOpen) {
  { std::ofstream touch(LogPath()); }
  auto log = BlockLog::Open(LogPath());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->tip_height(), 0u);
}

TEST_F(BlockLogTest, BadMagicFailsClosed) {
  WriteFileBytes(LogPath(), "NOPE\x01\x00\x00\x00");
  EXPECT_TRUE(BlockLog::Open(LogPath()).status().IsCorruption());
}

// Crash-consistency fuzz: truncate the file at EVERY byte boundary inside
// the last record. Each prefix must recover to exactly the settled blocks
// (the torn tail dropped), never to a half-loaded record.
TEST_F(BlockLogTest, TornTailFuzzEveryTruncationPoint) {
  std::vector<Block> blocks = MakeBlocks(3);
  std::string full;
  std::string after_two;
  {
    auto log = BlockLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(blocks[0]).ok());
    ASSERT_TRUE(log->Append(blocks[1]).ok());
    log->Close();
    after_two = ReadFileBytes(LogPath());
    auto again = BlockLog::Open(LogPath());
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(again->Append(blocks[2]).ok());
    again->Close();
    full = ReadFileBytes(LogPath());
  }
  ASSERT_GT(full.size(), after_two.size());

  for (size_t cut = after_two.size(); cut < full.size(); ++cut) {
    const std::string torn_path = (dir_ / "torn.log").string();
    WriteFileBytes(torn_path, full.substr(0, cut));
    auto log = BlockLog::Open(torn_path);
    ASSERT_TRUE(log.ok()) << "cut at byte " << cut << ": "
                          << log.status().ToString();
    EXPECT_EQ(log->tip_height(), 2u) << "cut at byte " << cut;
    // The very first cut lands exactly on the record-2 boundary: a clean
    // file, nothing torn. Every later cut leaves a partial tail.
    EXPECT_EQ(log->open_stats().tail_truncated, cut > after_two.size())
        << "cut at byte " << cut;
    std::vector<Block> recovered = log->TakeRecoveredBlocks();
    ASSERT_EQ(recovered.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(recovered[0].Serialize(), blocks[0].Serialize());
    EXPECT_EQ(recovered[1].Serialize(), blocks[1].Serialize());
    // The torn log stays writable: the dropped block re-appends.
    log->Close();
    auto reopened = BlockLog::Open(torn_path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_TRUE(reopened->Append(blocks[2]).ok()) << "cut at byte " << cut;
  }
}

// Bit-flip fuzz over settled records: corruption BEFORE the tail is not a
// torn write and must fail closed — recovering around it would silently
// drop acknowledged commits.
TEST_F(BlockLogTest, BitFlipInSettledRecordFailsClosed) {
  std::vector<Block> blocks = MakeBlocks(3);
  std::string after_two;
  std::string full;
  {
    auto log = BlockLog::Open(LogPath());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(blocks[0]).ok());
    ASSERT_TRUE(log->Append(blocks[1]).ok());
    log->Close();
    after_two = ReadFileBytes(LogPath());
    auto again = BlockLog::Open(LogPath());
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(again->Append(blocks[2]).ok());
    again->Close();
    full = ReadFileBytes(LogPath());
  }
  // Flip one bit in every 7th byte of the settled region (header + first
  // two records) — sampling keeps the fuzz fast while touching the length
  // field, the CRC field and the payload of both records.
  const std::string flip_path = (dir_ / "flip.log").string();
  for (size_t pos = 0; pos < after_two.size(); pos += 7) {
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x10);
    WriteFileBytes(flip_path, mutated);
    auto log = BlockLog::Open(flip_path);
    // Either the open fails closed (Corruption) or — when the flip lands
    // in the final record's bytes shared with the settled prefix length —
    // never a silently different block.
    if (log.ok()) {
      std::vector<Block> recovered = log->TakeRecoveredBlocks();
      for (size_t i = 0; i < recovered.size(); ++i) {
        EXPECT_EQ(recovered[i].Serialize(), blocks[i].Serialize())
            << "flip at byte " << pos;
      }
      // A flip that still opens may only have truncated the tail, never
      // kept all three records with mutated bytes.
      EXPECT_LT(log->tip_height(), 3u) << "flip at byte " << pos;
    } else {
      // Header flips surface as Corruption (magic) or Unimplemented
      // (version); record flips as Corruption. All fail closed.
      EXPECT_TRUE(log.status().IsCorruption() ||
                  log.status().IsUnimplemented())
          << "flip at byte " << pos << ": " << log.status().ToString();
    }
  }
  // A flip in the LAST record's payload is indistinguishable from a torn
  // write and must recover to the settled prefix.
  std::string mutated = full;
  mutated[full.size() - 3] = static_cast<char>(mutated[full.size() - 3] ^ 0x40);
  WriteFileBytes(flip_path, mutated);
  auto log = BlockLog::Open(flip_path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->tip_height(), 2u);
  EXPECT_TRUE(log->open_stats().tail_truncated);
}

}  // namespace
}  // namespace bcfl::chain
