#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace bcfl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const StatusCode codes[] = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,  StatusCode::kFailedPrecondition,
      StatusCode::kInternal,    StatusCode::kUnimplemented,
      StatusCode::kCorruption,  StatusCode::kPermissionDenied,
      StatusCode::kTimeout,     StatusCode::kResourceExhausted};
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeToString(codes[i]), StatusCodeToString(codes[j]));
    }
  }
}

TEST(StatusTest, PredicatesMatchOnlyOwnCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInternal());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status s = Status::NotFound("key k").WithContext("loading state");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "loading state: key k");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("irrelevant");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_NE(Status::Internal("a"), Status::Internal("b"));
  EXPECT_NE(Status::Internal("a"), Status::Corruption("a"));
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  BCFL_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

Result<int> UsesAssignOrReturn(int x) {
  BCFL_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = 42;
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.ValueOr(-1), 42);

  Result<int> bad = Status::NotFound("gone");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);

  Result<int> err = UsesAssignOrReturn(0);
  EXPECT_TRUE(err.status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace bcfl
