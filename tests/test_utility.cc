#include "shapley/utility.h"

#include <gtest/gtest.h>

#include "data/digits.h"

namespace bcfl::shapley {
namespace {

ml::Dataset TestSet() {
  data::DigitsConfig config;
  config.num_instances = 300;
  config.seed = 4;
  return data::DigitsGenerator(config).Generate();
}

ml::Matrix TrainedWeights(const ml::Dataset& data, size_t epochs) {
  ml::LogisticRegressionConfig config;
  config.learning_rate = 0.05;
  ml::LogisticRegression model(data.num_features(), data.num_classes(),
                               config);
  EXPECT_TRUE(model.TrainEpochs(data, epochs).ok());
  return model.weights();
}

TEST(TestAccuracyUtilityTest, MatchesModelAccuracy) {
  ml::Dataset data = TestSet();
  ml::Matrix weights = TrainedWeights(data, 30);
  TestAccuracyUtility utility(data);
  auto u = utility.Evaluate(weights);
  ASSERT_TRUE(u.ok());
  auto model = ml::LogisticRegression::FromWeights(weights);
  ASSERT_TRUE(model.ok());
  auto acc = model->Accuracy(data);
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*u, *acc);
  EXPECT_GT(*u, 0.5);
}

TEST(TestAccuracyUtilityTest, UntrainedModelNearChance) {
  ml::Dataset data = TestSet();
  TestAccuracyUtility utility(data);
  auto u = utility.Evaluate(ml::Matrix(65, 10));
  ASSERT_TRUE(u.ok());
  EXPECT_LT(*u, 0.35);
}

TEST(TestAccuracyUtilityTest, RejectsWrongShape) {
  TestAccuracyUtility utility(TestSet());
  EXPECT_FALSE(utility.Evaluate(ml::Matrix(10, 10)).ok());
}

TEST(NegLogLossUtilityTest, TrainedBeatsUntrained) {
  ml::Dataset data = TestSet();
  NegLogLossUtility utility(data);
  auto trained = utility.Evaluate(TrainedWeights(data, 30));
  auto untrained = utility.Evaluate(ml::Matrix(65, 10));
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(untrained.ok());
  EXPECT_GT(*trained, *untrained);  // Higher utility = lower loss.
  EXPECT_LE(*trained, 0.0);
}

TEST(CachingUtilityTest, CachesByWeightContent) {
  ml::Dataset data = TestSet();
  CachingUtility cached(std::make_unique<TestAccuracyUtility>(data));
  ml::Matrix w1 = TrainedWeights(data, 5);
  ml::Matrix w2 = TrainedWeights(data, 10);

  auto u1 = cached.Evaluate(w1);
  ASSERT_TRUE(u1.ok());
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 0u);

  auto u1_again = cached.Evaluate(w1);
  ASSERT_TRUE(u1_again.ok());
  EXPECT_DOUBLE_EQ(*u1_again, *u1);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);

  ASSERT_TRUE(cached.Evaluate(w2).ok());
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.cache_size(), 2u);

  // A copy with identical content hits the cache.
  ml::Matrix w1_copy = w1;
  ASSERT_TRUE(cached.Evaluate(w1_copy).ok());
  EXPECT_EQ(cached.hits(), 2u);
}

TEST(CachingUtilityTest, CacheAgreesWithInner) {
  ml::Dataset data = TestSet();
  TestAccuracyUtility inner(data);
  CachingUtility cached(std::make_unique<TestAccuracyUtility>(data));
  for (size_t epochs : {1u, 3u, 7u}) {
    ml::Matrix w = TrainedWeights(data, epochs);
    auto direct = inner.Evaluate(w);
    auto via_cache = cached.Evaluate(w);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_cache.ok());
    EXPECT_DOUBLE_EQ(*direct, *via_cache);
  }
}

}  // namespace
}  // namespace bcfl::shapley
