#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"

namespace bcfl::obs {
namespace {

JsonValue ParseOk(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " for: " << text;
  return parsed.ok() ? *parsed : JsonValue{};
}

TEST(JsonReaderTest, Scalars) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value);
  EXPECT_FALSE(ParseOk("false").bool_value);
  EXPECT_DOUBLE_EQ(ParseOk("42").number, 42.0);
  EXPECT_DOUBLE_EQ(ParseOk("-3.5e2").number, -350.0);
  EXPECT_EQ(ParseOk("\"hi\"").string, "hi");
  EXPECT_DOUBLE_EQ(ParseOk("  1.25  ").number, 1.25);
}

TEST(JsonReaderTest, NestedDocumentPreservesOrder) {
  JsonValue v = ParseOk(
      R"({"b":1,"a":{"x":[1,2,3],"y":null},"c":true})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "b");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "c");
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* x = a->Find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_EQ(x->array.size(), 3u);
  EXPECT_DOUBLE_EQ(x->array[2].number, 3.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonReaderTest, StringEscapes) {
  EXPECT_EQ(ParseOk(R"("a\"b\\c\/d\n\t\r\b\f")").string,
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(ParseOk(R"("\u0041\u00e9")").string, "A\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(ParseOk(R"("\ud83d\ude00")").string, "\xf0\x9f\x98\x80");
  EXPECT_EQ(ParseOk(R"("\u0007")").string, "\x07");
}

TEST(JsonReaderTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad \\q escape\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());  // Lone high surrogate.
  EXPECT_FALSE(ParseJson("1 2").ok());          // Trailing garbage.
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(JsonReaderTest, DepthCapStopsUnboundedRecursion) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow(100, '[');
  shallow += std::string(100, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonWriterTest, NonFiniteNumbersDegradeToNull) {
  JsonWriter w;
  w.BeginObject();
  w.Field("nan", std::numeric_limits<double>::quiet_NaN());
  w.Field("inf", std::numeric_limits<double>::infinity());
  w.Field("ninf", -std::numeric_limits<double>::infinity());
  w.Field("fine", 1.5);
  w.EndObject();
  JsonValue v = ParseOk(w.str());
  EXPECT_TRUE(v.Find("nan")->is_null());
  EXPECT_TRUE(v.Find("inf")->is_null());
  EXPECT_TRUE(v.Find("ninf")->is_null());
  EXPECT_DOUBLE_EQ(v.Find("fine")->number, 1.5);
}

TEST(JsonWriterTest, ControlCharactersRoundTrip) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", std::string("a\x01\x1f\n\"\\b").c_str());
  w.EndObject();
  JsonValue v = ParseOk(w.str());
  EXPECT_EQ(v.Find("s")->string, "a\x01\x1f\n\"\\b");
}

// Fuzz-style round trip: random documents emitted by JsonWriter must
// parse back with every leaf intact (non-finite numbers as null).
// Writer-reader disagreements on escaping or number formatting show up
// here long before a mangled BENCH_*.json confuses the bench gate.
TEST(JsonRoundTripFuzzTest, RandomDocumentsSurviveWriteParse) {
  Xoshiro256 rng(20260808);
  for (int doc = 0; doc < 200; ++doc) {
    JsonWriter w;
    std::vector<std::string> keys;
    std::vector<double> numbers;
    std::vector<std::string> strings;
    const size_t fields = 1 + rng.Next() % 8;
    w.BeginObject();
    for (size_t f = 0; f < fields; ++f) {
      keys.push_back("k" + std::to_string(f));
      switch (rng.Next() % 3) {
        case 0: {
          double value;
          const uint64_t pick = rng.Next() % 8;
          if (pick == 0) {
            value = std::numeric_limits<double>::quiet_NaN();
          } else if (pick == 1) {
            value = std::numeric_limits<double>::infinity();
          } else {
            // %.6f territory: keep magnitudes printable-exact.
            value = std::floor(rng.NextDouble() * 2e6 - 1e6) / 64.0;
          }
          numbers.push_back(value);
          strings.emplace_back();
          w.Field(keys.back(), value);
          break;
        }
        case 1: {
          std::string s;
          const size_t len = rng.Next() % 24;
          for (size_t i = 0; i < len; ++i) {
            // Bytes 1..127: ASCII incl. controls, quotes, backslashes.
            s += static_cast<char>(1 + rng.Next() % 127);
          }
          numbers.push_back(0.0);
          strings.push_back(s);
          w.Field(keys.back().c_str(), s.c_str());
          break;
        }
        default: {
          w.BeginArray(keys.back().c_str());
          const size_t elems = rng.Next() % 4;
          double sum = 0;
          for (size_t e = 0; e < elems; ++e) {
            const double value = std::floor(rng.NextDouble() * 1000.0);
            sum += value;
            w.Element(value);
          }
          w.EndArray();
          numbers.push_back(sum);
          strings.emplace_back();
          break;
        }
      }
    }
    w.EndObject();

    auto parsed = ParseJson(w.str());
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << " for doc: " << w.str();
    ASSERT_EQ(parsed->object.size(), fields) << w.str();
    for (size_t f = 0; f < fields; ++f) {
      const JsonValue* leaf = parsed->Find(keys[f]);
      ASSERT_NE(leaf, nullptr);
      if (leaf->is_number()) {
        EXPECT_DOUBLE_EQ(leaf->number, numbers[f]) << w.str();
      } else if (leaf->is_string()) {
        EXPECT_EQ(leaf->string, strings[f]) << w.str();
      } else if (leaf->is_array()) {
        double sum = 0;
        for (const JsonValue& e : leaf->array) sum += e.number;
        EXPECT_DOUBLE_EQ(sum, numbers[f]) << w.str();
      } else {
        EXPECT_TRUE(leaf->is_null()) << w.str();
        EXPECT_FALSE(std::isfinite(numbers[f])) << w.str();
      }
    }
  }
}

TEST(JsonReaderTest, ParseFileErrorsCarryPath) {
  auto missing = ParseJsonFile("/nonexistent/bcfl.json");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("/nonexistent/bcfl.json"),
            std::string::npos);
}

}  // namespace
}  // namespace bcfl::obs
