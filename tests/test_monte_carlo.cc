#include "shapley/monte_carlo.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "shapley/shapley_math.h"

namespace bcfl::shapley {
namespace {

Result<double> AdditiveUtility(uint64_t mask) {
  // Weights 1, 2, 3, 4, 5 per player.
  double total = 0;
  for (size_t i = 0; i < 5; ++i) {
    if (mask & (1ULL << i)) total += static_cast<double>(i + 1);
  }
  return total;
}

TEST(MonteCarloTest, ConvergesToExactOnAdditiveGame) {
  MonteCarloConfig config;
  config.num_permutations = 2000;
  config.seed = 1;
  auto result = MonteCarloShapley(5, AdditiveUtility, config);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result->values[i], static_cast<double>(i + 1), 0.05);
  }
}

TEST(MonteCarloTest, MatchesExactOnRandomGame) {
  Xoshiro256 rng(5);
  const size_t n = 5;
  std::vector<double> table(1ULL << n);
  for (auto& u : table) u = rng.NextDouble();
  auto utility = [&](uint64_t mask) -> Result<double> {
    return table[mask];
  };
  auto exact = ExactShapleyFromTable(n, table);
  ASSERT_TRUE(exact.ok());

  MonteCarloConfig config;
  config.num_permutations = 5000;
  config.seed = 2;
  auto mc = MonteCarloShapley(n, utility, config);
  ASSERT_TRUE(mc.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(mc->values[i], (*exact)[i], 0.05) << "player " << i;
  }
}

TEST(MonteCarloTest, EstimatorIsUnbiasedInExpectationAcrossSeeds) {
  // The mean of several independent estimates approaches the exact value
  // faster than any single estimate.
  auto utility = [](uint64_t mask) -> Result<double> {
    bool left = (mask & 0b011) != 0;
    bool right = (mask & 0b100) != 0;
    return left && right ? 1.0 : 0.0;
  };
  auto exact = ExactShapley(3, utility);
  ASSERT_TRUE(exact.ok());
  std::vector<double> avg(3, 0.0);
  const int kRuns = 10;
  for (int run = 0; run < kRuns; ++run) {
    MonteCarloConfig config;
    config.num_permutations = 300;
    config.seed = static_cast<uint64_t>(run + 1);
    auto mc = MonteCarloShapley(3, utility, config);
    ASSERT_TRUE(mc.ok());
    for (size_t i = 0; i < 3; ++i) avg[i] += mc->values[i] / kRuns;
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(avg[i], (*exact)[i], 0.03);
  }
}

TEST(MonteCarloTest, MemoizationBoundsEvaluations) {
  MonteCarloConfig config;
  config.num_permutations = 10000;
  config.seed = 3;
  auto result = MonteCarloShapley(4, AdditiveUtility, config);
  ASSERT_TRUE(result.ok());
  // At most 2^4 distinct coalitions can ever be evaluated.
  EXPECT_LE(result->utility_evaluations, 16u);
}

TEST(MonteCarloTest, TruncationSkipsConvergedSuffixes) {
  // A game whose utility saturates once any player joins: truncation
  // should skip almost every suffix.
  auto saturating = [](uint64_t mask) -> Result<double> {
    return mask != 0 ? 1.0 : 0.0;
  };
  MonteCarloConfig truncated;
  truncated.num_permutations = 200;
  truncated.seed = 4;
  truncated.truncation_tolerance = 0.01;
  auto with_trunc = MonteCarloShapley(6, saturating, truncated);
  ASSERT_TRUE(with_trunc.ok());
  EXPECT_GT(with_trunc->truncated_scans, 100u);

  MonteCarloConfig full = truncated;
  full.truncation_tolerance = 0.0;
  auto without = MonteCarloShapley(6, saturating, full);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->truncated_scans, 0u);
}

TEST(MonteCarloTest, RejectsBadArguments) {
  EXPECT_FALSE(MonteCarloShapley(0, AdditiveUtility, {}).ok());
  EXPECT_FALSE(MonteCarloShapley(64, AdditiveUtility, {}).ok());
  MonteCarloConfig config;
  config.num_permutations = 0;
  EXPECT_FALSE(MonteCarloShapley(3, AdditiveUtility, config).ok());
}

TEST(MonteCarloTest, PropagatesUtilityErrors) {
  auto broken = [](uint64_t) -> Result<double> {
    return Status::Internal("bad utility");
  };
  EXPECT_TRUE(MonteCarloShapley(3, broken, {}).status().IsInternal());
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  MonteCarloConfig config;
  config.num_permutations = 50;
  config.seed = 6;
  auto r1 = MonteCarloShapley(5, AdditiveUtility, config);
  auto r2 = MonteCarloShapley(5, AdditiveUtility, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

}  // namespace
}  // namespace bcfl::shapley
