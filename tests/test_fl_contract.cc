#include "core/fl_contract.h"

#include <gtest/gtest.h>

#include "chain/contract_host.h"
#include "secureagg/fixed_point.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

namespace bcfl::core {
namespace {

/// Tiny 3-class blob dataset so contract evaluation is fast.
ml::Dataset TinyValidationSet(uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  const size_t kPerClass = 30;
  ml::Matrix x(3 * kPerClass, 4);
  std::vector<int> y(3 * kPerClass);
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < kPerClass; ++i) {
      size_t row = static_cast<size_t>(c) * kPerClass + i;
      for (size_t f = 0; f < 4; ++f) {
        x.At(row, f) = rng.NextGaussian(static_cast<double>(c) * 3.0, 0.5);
      }
      y[row] = c;
    }
  }
  return ml::Dataset(std::move(x), std::move(y), 3);
}

class FlContractFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kOwners = 4;
  static constexpr uint32_t kGroups = 2;
  static constexpr uint32_t kRows = 5;   // 4 features + bias.
  static constexpr uint32_t kCols = 3;

  FlContractFixture() : rng_(11), validation_(TinyValidationSet()) {
    crypto::DiffieHellman dh;
    for (uint32_t i = 0; i < kOwners; ++i) {
      schnorr_keys_.push_back(schnorr_.GenerateKeyPair(&rng_));
      participants_.push_back(
          std::make_unique<secureagg::SecureAggParticipant>(
              i, dh, &rng_, /*use_self_mask=*/false));
    }
    for (auto& p : participants_) {
      for (auto& q : participants_) {
        if (p->id() != q->id()) {
          EXPECT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
        }
      }
    }
    params_.num_owners = kOwners;
    params_.rounds = 3;
    params_.num_groups = kGroups;
    params_.seed_e = 5;
    params_.fixed_point_bits = 24;
    params_.weight_rows = kRows;
    params_.weight_cols = kCols;
    for (uint32_t i = 0; i < kOwners; ++i) {
      params_.schnorr_public_keys.push_back(schnorr_keys_[i].public_key);
      params_.dh_public_keys.push_back(participants_[i]->public_key());
    }
    host_ = std::make_unique<chain::ContractHost>(schnorr_);
    EXPECT_TRUE(
        host_->Register(std::make_shared<FlContract>(validation_)).ok());
  }

  chain::Transaction SetupTx(uint32_t signer = 0) {
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "setup";
    tx.payload = params_.Serialize();
    tx.nonce = 0;
    tx.Sign(schnorr_, schnorr_keys_[signer], &rng_);
    return tx;
  }

  /// Builds a masked submission for `owner` at `round` from its plain
  /// local weights.
  chain::Transaction SubmitTx(uint32_t owner, uint64_t round,
                              const ml::Matrix& weights) {
    auto groups = CurrentGroups(round);
    std::vector<secureagg::OwnerId> members;
    for (const auto& group : groups) {
      if (std::find(group.begin(), group.end(), owner) != group.end()) {
        for (size_t m : group) {
          members.push_back(static_cast<secureagg::OwnerId>(m));
        }
      }
    }
    secureagg::FixedPointCodec codec(24);
    auto masked = participants_[owner]->MaskUpdate(
        round, members, codec.EncodeMatrix(weights));
    EXPECT_TRUE(masked.ok());
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "submit_update";
    tx.payload = FlContract::EncodeSubmitUpdate(round, owner, *masked);
    tx.nonce = round * 100 + owner + 1;
    tx.Sign(schnorr_, schnorr_keys_[owner], &rng_);
    return tx;
  }

  std::vector<std::vector<size_t>> CurrentGroups(uint64_t round) const {
    auto perm = shapley::PermutationFromSeed(params_.seed_e, round, kOwners);
    return *shapley::GroupUsers(perm, kGroups);
  }

  std::vector<ml::Matrix> RandomLocals(uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<ml::Matrix> locals;
    for (uint32_t i = 0; i < kOwners; ++i) {
      locals.push_back(ml::Matrix::Gaussian(kRows, kCols, 0.5, &rng));
    }
    return locals;
  }

  crypto::Schnorr schnorr_;
  Xoshiro256 rng_;
  ml::Dataset validation_;
  std::vector<crypto::SchnorrKeyPair> schnorr_keys_;
  std::vector<std::unique_ptr<secureagg::SecureAggParticipant>> participants_;
  SetupParams params_;
  std::unique_ptr<chain::ContractHost> host_;
};

TEST_F(FlContractFixture, SetupStoresParamsOnce) {
  chain::ContractState state;
  auto r1 = host_->ExecuteTransaction(SetupTx(), &state);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->success);
  EXPECT_TRUE(state.Has(keys::SetupParams()));

  auto r2 = host_->ExecuteTransaction(SetupTx(), &state);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->success);  // AlreadyExists.
}

TEST_F(FlContractFixture, SetupMustBeSignedByOwnerZero) {
  chain::ContractState state;
  auto receipt = host_->ExecuteTransaction(SetupTx(/*signer=*/2), &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_FALSE(state.Has(keys::SetupParams()));
}

TEST_F(FlContractFixture, SubmitBeforeSetupFails) {
  chain::ContractState state;
  auto locals = RandomLocals(1);
  auto receipt =
      host_->ExecuteTransaction(SubmitTx(0, 0, locals[0]), &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(FlContractFixture, FullRoundEvaluatesGroupSvOnMaskedUpdates) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);

  auto locals = RandomLocals(2);
  for (uint32_t i = 0; i < kOwners; ++i) {
    auto receipt =
        host_->ExecuteTransaction(SubmitTx(i, 0, locals[i]), &state);
    ASSERT_TRUE(receipt.ok());
    EXPECT_TRUE(receipt->success) << receipt->error;
  }
  ASSERT_TRUE(state.Has(keys::RoundComplete(0)));

  // The on-chain result (computed from *masked* updates) must match the
  // off-chain GroupSV reference on the plain locals, up to fixed-point
  // quantisation.
  shapley::TestAccuracyUtility utility(validation_);
  shapley::GroupShapley reference(kOwners, {kGroups, params_.seed_e},
                                  &utility);
  auto expected = reference.EvaluateRound(0, locals);
  ASSERT_TRUE(expected.ok());
  for (uint32_t i = 0; i < kOwners; ++i) {
    auto on_chain = GetDouble(state, keys::RoundSv(0, i));
    ASSERT_TRUE(on_chain.ok());
    EXPECT_NEAR(*on_chain, expected->user_values[i], 1e-4) << "owner " << i;
  }
  auto global = GetMatrix(state, keys::GlobalModel(0));
  ASSERT_TRUE(global.ok());
  for (size_t k = 0; k < global->size(); ++k) {
    EXPECT_NEAR(global->data()[k], expected->global_model.data()[k], 1e-4);
  }
}

TEST_F(FlContractFixture, DuplicateSubmissionRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  auto locals = RandomLocals(3);
  ASSERT_TRUE(
      host_->ExecuteTransaction(SubmitTx(1, 0, locals[1]), &state)->success);
  auto duplicate =
      host_->ExecuteTransaction(SubmitTx(1, 0, locals[1]), &state);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_FALSE(duplicate->success);
}

TEST_F(FlContractFixture, ImpersonationRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  // Owner 2 signs a payload claiming to be owner 1.
  auto locals = RandomLocals(4);
  chain::Transaction tx = SubmitTx(1, 0, locals[1]);
  tx.Sign(schnorr_, schnorr_keys_[2], &rng_);  // Re-sign with wrong key.
  auto receipt = host_->ExecuteTransaction(tx, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->error.find("PermissionDenied"), std::string::npos);
}

TEST_F(FlContractFixture, RejectsWrongDimensionOrHorizon) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);

  chain::Transaction bad_dim;
  bad_dim.contract = "bcfl";
  bad_dim.method = "submit_update";
  bad_dim.payload =
      FlContract::EncodeSubmitUpdate(0, 0, std::vector<uint64_t>(7));
  bad_dim.nonce = 1;
  bad_dim.Sign(schnorr_, schnorr_keys_[0], &rng_);
  EXPECT_FALSE(host_->ExecuteTransaction(bad_dim, &state)->success);

  auto locals = RandomLocals(5);
  auto late = SubmitTx(0, /*round=*/99, locals[0]);
  EXPECT_FALSE(host_->ExecuteTransaction(late, &state)->success);
}

TEST_F(FlContractFixture, UnknownMethodFails) {
  chain::ContractState state;
  chain::Transaction tx;
  tx.contract = "bcfl";
  tx.method = "withdraw";
  tx.nonce = 1;
  tx.Sign(schnorr_, schnorr_keys_[0], &rng_);
  auto receipt = host_->ExecuteTransaction(tx, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(FlContractFixture, TotalsAccumulateAcrossRounds) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  for (uint64_t round = 0; round < 2; ++round) {
    auto locals = RandomLocals(10 + round);
    for (uint32_t i = 0; i < kOwners; ++i) {
      ASSERT_TRUE(
          host_->ExecuteTransaction(SubmitTx(i, round, locals[i]), &state)
              ->success);
    }
  }
  for (uint32_t i = 0; i < kOwners; ++i) {
    auto total = GetDouble(state, keys::TotalSv(i));
    auto r0 = GetDouble(state, keys::RoundSv(0, i));
    auto r1 = GetDouble(state, keys::RoundSv(1, i));
    ASSERT_TRUE(total.ok());
    ASSERT_TRUE(r0.ok());
    ASSERT_TRUE(r1.ok());
    EXPECT_NEAR(*total, *r0 + *r1, 1e-12);
  }
}

TEST_F(FlContractFixture, DropoutRecoveryCompletesRound) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);

  auto locals = RandomLocals(21);
  // Owner 2 never submits; the others' masks against it dangle.
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(
        host_->ExecuteTransaction(SubmitTx(i, 0, locals[i]), &state)
            ->success);
  }
  EXPECT_FALSE(state.Has(keys::RoundComplete(0)));

  // Share-reveal: owner 0 posts owner 2's reconstructed DH private key.
  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      FlContract::EncodeRecover(0, 2, participants_[2]->private_key());
  recover.nonce = 900;
  recover.Sign(schnorr_, schnorr_keys_[0], &rng_);
  auto receipt = host_->ExecuteTransaction(recover, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success) << receipt->error;
  EXPECT_TRUE(state.Has(keys::RoundComplete(0)));

  // The dropped owner scores zero this round; survivors score real SVs.
  auto dropped_sv = GetDouble(state, keys::RoundSv(0, 2));
  ASSERT_TRUE(dropped_sv.ok());
  EXPECT_EQ(*dropped_sv, 0.0);

  // Each group model must equal the plain mean of its *survivors'*
  // locals (masks fully removed), up to quantisation.
  auto groups = CurrentGroups(0);
  for (uint32_t j = 0; j < kGroups; ++j) {
    std::vector<size_t> survivors;
    for (size_t m : groups[j]) {
      if (m != 2) survivors.push_back(m);
    }
    if (survivors.empty()) continue;
    std::vector<ml::Matrix> survivor_locals;
    for (size_t m : survivors) survivor_locals.push_back(locals[m]);
    auto expected = ml::MeanOfMatrices(survivor_locals).value();
    auto on_chain = GetMatrix(state, keys::GroupModel(0, j));
    ASSERT_TRUE(on_chain.ok());
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(on_chain->data()[k], expected.data()[k], 1e-4)
          << "group " << j << " element " << k;
    }
  }
}

TEST_F(FlContractFixture, ForgedRecoveryKeyRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  // A key that does not match owner 2's public key.
  recover.payload = FlContract::EncodeRecover(0, 2, crypto::UInt256(12345));
  recover.nonce = 901;
  recover.Sign(schnorr_, schnorr_keys_[0], &rng_);
  auto receipt = host_->ExecuteTransaction(recover, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->error.find("does not match"), std::string::npos);
}

TEST_F(FlContractFixture, RecoveryOfSubmittedOwnerRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  auto locals = RandomLocals(22);
  ASSERT_TRUE(
      host_->ExecuteTransaction(SubmitTx(1, 0, locals[1]), &state)->success);

  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      FlContract::EncodeRecover(0, 1, participants_[1]->private_key());
  recover.nonce = 902;
  recover.Sign(schnorr_, schnorr_keys_[0], &rng_);
  EXPECT_FALSE(host_->ExecuteTransaction(recover, &state)->success);
}

TEST_F(FlContractFixture, SubmissionAfterRecoveryRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      FlContract::EncodeRecover(0, 3, participants_[3]->private_key());
  recover.nonce = 903;
  recover.Sign(schnorr_, schnorr_keys_[1], &rng_);
  ASSERT_TRUE(host_->ExecuteTransaction(recover, &state)->success);

  auto locals = RandomLocals(23);
  EXPECT_FALSE(
      host_->ExecuteTransaction(SubmitTx(3, 0, locals[3]), &state)->success);
}

TEST_F(FlContractFixture, RecoveryFromNonOwnerRejected) {
  chain::ContractState state;
  ASSERT_TRUE(host_->ExecuteTransaction(SetupTx(), &state)->success);
  crypto::SchnorrKeyPair outsider = schnorr_.GenerateKeyPair(&rng_);
  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      FlContract::EncodeRecover(0, 2, participants_[2]->private_key());
  recover.nonce = 904;
  recover.Sign(schnorr_, outsider, &rng_);
  auto receipt = host_->ExecuteTransaction(recover, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
}

TEST_F(FlContractFixture, ReExecutionIsDeterministic) {
  // Same transactions on two fresh states -> identical state roots: the
  // property that makes the evaluation verifiable by miners.
  std::vector<chain::Transaction> txs;
  txs.push_back(SetupTx());
  auto locals = RandomLocals(6);
  for (uint32_t i = 0; i < kOwners; ++i) {
    txs.push_back(SubmitTx(i, 0, locals[i]));
  }
  chain::ContractState s1, s2;
  ASSERT_TRUE(host_->ExecuteBlock(txs, &s1).ok());
  ASSERT_TRUE(host_->ExecuteBlock(txs, &s2).ok());
  EXPECT_EQ(s1.StateRoot(), s2.StateRoot());
}

}  // namespace
}  // namespace bcfl::core
