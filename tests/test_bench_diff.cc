#include <gtest/gtest.h>

#include <string>

#include "obs/bench_diff.h"
#include "obs/json_reader.h"

namespace bcfl::obs {
namespace {

JsonValue Parse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue{};
}

const MetricVerdict* VerdictFor(const BenchDiffResult& result,
                                const std::string& path) {
  for (const MetricVerdict& v : result.verdicts) {
    if (v.path == path) return &v;
  }
  return nullptr;
}

TEST(InferDirectionTest, NameHeuristics) {
  EXPECT_EQ(InferDirection("group_sv.3.naive_s"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(InferDirection("mask_us"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(InferDirection("overhead_frac"),
            MetricDirection::kLowerIsBetter);
  // Throughput names win over the "_s" time suffix.
  EXPECT_EQ(InferDirection("pipeline.tx_per_s"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(InferDirection("schnorr_verify.speedup"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(InferDirection("sigcache.hit_rate"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(InferDirection("round_accuracy"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(InferDirection("owners"), MetricDirection::kUnknown);
  EXPECT_EQ(InferDirection("bench"), MetricDirection::kUnknown);
}

TEST(BenchDiffTest, RegressionImprovementAndOk) {
  const JsonValue baseline = Parse(
      R"({"slow_s": 1.0, "fast_s": 1.0, "steady_s": 1.0, "tx_per_s": 100.0})");
  const JsonValue candidate = Parse(
      R"({"slow_s": 2.0, "fast_s": 0.5, "steady_s": 1.1, "tx_per_s": 50.0})");
  BenchDiffOptions options;
  options.default_tolerance = 0.25;
  const BenchDiffResult result = DiffBench(baseline, candidate, options);

  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.checked, 4u);
  EXPECT_EQ(result.regressions, 2u);  // slow_s doubled, tx_per_s halved.
  EXPECT_EQ(result.missing, 0u);
  EXPECT_EQ(VerdictFor(result, "slow_s")->status, "regression");
  EXPECT_EQ(VerdictFor(result, "fast_s")->status, "improvement");
  EXPECT_EQ(VerdictFor(result, "steady_s")->status, "ok");
  EXPECT_EQ(VerdictFor(result, "tx_per_s")->status, "regression");
}

TEST(BenchDiffTest, WithinToleranceEverywherePasses) {
  const JsonValue baseline =
      Parse(R"({"a_s": 1.0, "speedup": 4.0, "flag": true})");
  const JsonValue candidate =
      Parse(R"({"a_s": 1.2, "speedup": 3.5, "flag": true})");
  const BenchDiffResult result =
      DiffBench(baseline, candidate, BenchDiffOptions{});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_EQ(result.checked, 3u);
}

TEST(BenchDiffTest, MissingBaselineMetricFails) {
  const JsonValue baseline = Parse(R"({"kept_s": 1.0, "dropped_s": 1.0})");
  const JsonValue candidate = Parse(R"({"kept_s": 1.0})");
  const BenchDiffResult result =
      DiffBench(baseline, candidate, BenchDiffOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.missing, 1u);
  EXPECT_EQ(VerdictFor(result, "dropped_s")->status, "missing");
  // Type flips count as missing too: baseline bool, candidate number.
  const JsonValue flipped = Parse(R"({"kept_s": true, "dropped_s": 1.0})");
  EXPECT_EQ(DiffBench(flipped, candidate, BenchDiffOptions{}).missing, 2u);
}

TEST(BenchDiffTest, BooleanInvariants) {
  const JsonValue baseline =
      Parse(R"({"all_equivalent": true, "was_false": false})");
  const JsonValue broken =
      Parse(R"({"all_equivalent": false, "was_false": true})");
  const BenchDiffResult result =
      DiffBench(baseline, broken, BenchDiffOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.regressions, 1u);
  EXPECT_EQ(VerdictFor(result, "all_equivalent")->status,
            "flag_regression");
  // false -> true is not a regression.
  EXPECT_EQ(VerdictFor(result, "was_false")->status, "ok");
}

TEST(BenchDiffTest, NestedArraysFlattenToIndexedPaths) {
  const JsonValue baseline =
      Parse(R"({"group_sv": [{"m": 2, "engine_parallel_s": 1.0},
                             {"m": 3, "engine_parallel_s": 2.0}]})");
  const JsonValue candidate =
      Parse(R"({"group_sv": [{"m": 2, "engine_parallel_s": 1.0},
                             {"m": 3, "engine_parallel_s": 8.0}]})");
  const BenchDiffResult result =
      DiffBench(baseline, candidate, BenchDiffOptions{});
  EXPECT_FALSE(result.ok);
  const MetricVerdict* v =
      VerdictFor(result, "group_sv.1.engine_parallel_s");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, "regression");
  // "m" has no direction: informational, never gates.
  EXPECT_EQ(VerdictFor(result, "group_sv.0.m")->status, "info");
}

TEST(BenchDiffTest, ToleranceOverridesLongestSubstringWins) {
  const JsonValue baseline = Parse(R"({"sv": {"eval_us": 100.0}})");
  const JsonValue candidate = Parse(R"({"sv": {"eval_us": 160.0}})");
  BenchDiffOptions options;
  options.default_tolerance = 0.25;
  options.tolerance_overrides["eval_us"] = 0.5;
  options.tolerance_overrides["sv.eval_us"] = 0.7;
  const BenchDiffResult result = DiffBench(baseline, candidate, options);
  EXPECT_TRUE(result.ok);  // +60% is inside the 0.7 override.
  EXPECT_DOUBLE_EQ(VerdictFor(result, "sv.eval_us")->tolerance, 0.7);
}

TEST(BenchDiffTest, FiltersAndIgnores) {
  const JsonValue baseline = Parse(R"({"a_s": 1.0, "b_s": 1.0})");
  const JsonValue candidate = Parse(R"({"a_s": 9.0, "b_s": 9.0})");
  BenchDiffOptions only_b;
  only_b.metric_filters = {"b_s"};
  BenchDiffResult result = DiffBench(baseline, candidate, only_b);
  EXPECT_EQ(result.checked, 1u);
  EXPECT_EQ(VerdictFor(result, "a_s"), nullptr);

  BenchDiffOptions ignore_both;
  ignore_both.ignored = {"a_s", "b_s"};
  result = DiffBench(baseline, candidate, ignore_both);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.checked, 0u);
}

TEST(BenchDiffTest, VerdictJsonRoundTrips) {
  const JsonValue baseline = Parse(R"({"a_s": 1.0, "gone_s": 1.0})");
  const JsonValue candidate = Parse(R"({"a_s": 3.0})");
  const BenchDiffResult result =
      DiffBench(baseline, candidate, BenchDiffOptions{});
  const std::string doc = result.ToJson("base.json", "cand.json");
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << doc;
  EXPECT_EQ(parsed->Find("baseline")->string, "base.json");
  EXPECT_FALSE(parsed->Find("ok")->bool_value);
  EXPECT_DOUBLE_EQ(parsed->Find("regressions")->number, 1.0);
  EXPECT_DOUBLE_EQ(parsed->Find("missing")->number, 1.0);
  EXPECT_EQ(parsed->Find("metrics")->array.size(), 2u);
}

}  // namespace
}  // namespace bcfl::obs
