#include "fl/trainer.h"

#include <gtest/gtest.h>

#include "data/digits.h"
#include "data/partition.h"
#include "fl/fedavg.h"

namespace bcfl::fl {
namespace {

struct Fixture {
  ml::Dataset test;
  std::vector<FlClient> clients;

  static Fixture Make(size_t num_clients, size_t instances = 600,
                      uint64_t seed = 1) {
    data::DigitsConfig config;
    config.num_instances = instances;
    config.seed = seed;
    ml::Dataset full = data::DigitsGenerator(config).Generate();
    Xoshiro256 rng(seed);
    auto split = full.TrainTestSplit(0.8, &rng);
    auto parts = data::PartitionUniform(split->first, num_clients, &rng);
    Fixture f{std::move(split->second), {}};
    ml::LogisticRegressionConfig lr;
    lr.learning_rate = 0.05;
    lr.epochs = 3;
    for (size_t i = 0; i < num_clients; ++i) {
      f.clients.emplace_back(static_cast<OwnerId>(i),
                             std::move((*parts)[i]), lr);
    }
    return f;
  }
};

TEST(FedAvgTest, AveragesWeights) {
  ml::Matrix a(2, 2, 1.0), b(2, 2, 3.0);
  auto avg = FedAvg({a, b});
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->At(0, 0), 2.0);
}

TEST(FedAvgTest, WeightedRespectsSampleCounts) {
  ml::Matrix a(1, 1, 0.0), b(1, 1, 4.0);
  auto avg = FedAvgWeighted({a, b}, {3, 1});
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->At(0, 0), 1.0);
}

TEST(FedAvgTest, WeightedRejectsMismatch) {
  ml::Matrix a(1, 1);
  EXPECT_FALSE(FedAvgWeighted({a}, {1, 2}).ok());
}

TEST(FlClientTest, LocalUpdateMovesWeights) {
  Fixture f = Fixture::Make(2);
  ml::Matrix zero(65, 10);
  auto updated = f.clients[0].LocalUpdate(zero);
  ASSERT_TRUE(updated.ok());
  EXPECT_GT(updated->FrobeniusNorm(), 0.0);
}

TEST(FlClientTest, LocalUpdateIsDeterministic) {
  Fixture f = Fixture::Make(2);
  ml::Matrix zero(65, 10);
  auto u1 = f.clients[0].LocalUpdate(zero);
  auto u2 = f.clients[0].LocalUpdate(zero);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(*u1, *u2);
}

TEST(FederatedTrainerTest, RunProducesExpectedHistoryShape) {
  Fixture f = Fixture::Make(3);
  FlConfig config;
  config.rounds = 4;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  FederatedTrainer trainer(std::move(f.clients), config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->per_round_locals.size(), 4u);
  EXPECT_EQ(result->per_round_globals.size(), 4u);
  for (const auto& locals : result->per_round_locals) {
    EXPECT_EQ(locals.size(), 3u);
  }
  EXPECT_EQ(result->global_weights, result->per_round_globals.back());
}

TEST(FederatedTrainerTest, AccuracyImprovesOverRounds) {
  Fixture f = Fixture::Make(3, 1200);
  ml::Dataset test = std::move(f.test);
  FlConfig config;
  config.rounds = 15;
  config.local.epochs = 3;
  config.local.learning_rate = 0.05;
  FederatedTrainer trainer(std::move(f.clients), config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  auto model = ml::LogisticRegression::FromWeights(result->global_weights);
  ASSERT_TRUE(model.ok());
  auto acc = model->Accuracy(test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.6);
}

TEST(FederatedTrainerTest, GlobalIsMeanOfLocals) {
  Fixture f = Fixture::Make(4);
  FlConfig config;
  config.rounds = 1;
  FederatedTrainer trainer(std::move(f.clients), config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  auto mean = ml::MeanOfMatrices(result->per_round_locals[0]);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(result->global_weights, *mean);
}

TEST(FederatedTrainerTest, ParallelMatchesSerial) {
  Fixture f1 = Fixture::Make(4);
  Fixture f2 = Fixture::Make(4);
  FlConfig config;
  config.rounds = 3;
  FederatedTrainer t1(std::move(f1.clients), config);
  FederatedTrainer t2(std::move(f2.clients), config);
  ThreadPool pool(4);
  auto serial = t1.Run(nullptr);
  auto parallel = t2.Run(&pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->global_weights, parallel->global_weights);
}

TEST(FederatedTrainerTest, NoClientsFails) {
  FederatedTrainer trainer({}, FlConfig{});
  EXPECT_TRUE(trainer.Run().status().IsFailedPrecondition());
}

TEST(TrainCentralizedTest, EmptyCoalitionIsUntrainedModel) {
  Fixture f = Fixture::Make(3);
  FederatedTrainer trainer(std::move(f.clients), FlConfig{});
  auto model = trainer.TrainCentralized({});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->FrobeniusNorm(), 0.0);
}

TEST(TrainCentralizedTest, GrandCoalitionOutperformsSingleton) {
  Fixture f = Fixture::Make(3, 1500);
  ml::Dataset test = std::move(f.test);
  FlConfig config;
  config.local.learning_rate = 0.05;
  FederatedTrainer trainer(std::move(f.clients), config);

  auto grand = trainer.TrainCentralized({0, 1, 2}, 60);
  auto solo = trainer.TrainCentralized({0}, 60);
  ASSERT_TRUE(grand.ok());
  ASSERT_TRUE(solo.ok());
  auto grand_model = ml::LogisticRegression::FromWeights(*grand);
  auto solo_model = ml::LogisticRegression::FromWeights(*solo);
  auto grand_acc = grand_model->Accuracy(test);
  auto solo_acc = solo_model->Accuracy(test);
  ASSERT_TRUE(grand_acc.ok());
  ASSERT_TRUE(solo_acc.ok());
  // More data should not hurt on this task.
  EXPECT_GE(*grand_acc + 0.02, *solo_acc);
}

TEST(TrainCentralizedTest, RejectsBadIndex) {
  Fixture f = Fixture::Make(2);
  FederatedTrainer trainer(std::move(f.clients), FlConfig{});
  EXPECT_TRUE(trainer.TrainCentralized({5}).status().IsOutOfRange());
}

TEST(FederatedTrainerTest, WeightedAggregationUsesCounts) {
  // Two clients with very different sizes: the weighted global must sit
  // closer to the larger client's local weights.
  data::DigitsConfig config;
  config.num_instances = 600;
  ml::Dataset full = data::DigitsGenerator(config).Generate();
  Xoshiro256 rng(3);
  auto parts = data::PartitionWeighted(full, {0.9, 0.1}, &rng);
  ASSERT_TRUE(parts.ok());
  ml::LogisticRegressionConfig lr;
  lr.epochs = 2;
  std::vector<FlClient> clients;
  clients.emplace_back(0, std::move((*parts)[0]), lr);
  clients.emplace_back(1, std::move((*parts)[1]), lr);

  FlConfig fl_config;
  fl_config.rounds = 1;
  fl_config.weighted_aggregation = true;
  FederatedTrainer trainer(std::move(clients), fl_config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());

  const auto& locals = result->per_round_locals[0];
  ml::Matrix to_big = result->global_weights;
  ASSERT_TRUE(to_big.SubInPlace(locals[0]).ok());
  ml::Matrix to_small = result->global_weights;
  ASSERT_TRUE(to_small.SubInPlace(locals[1]).ok());
  EXPECT_LT(to_big.FrobeniusNorm(), to_small.FrobeniusNorm());
}

}  // namespace
}  // namespace bcfl::fl
