#include "chain/blockchain.h"

#include <gtest/gtest.h>

namespace bcfl::chain {
namespace {

Block NextBlock(const Blockchain& chain, uint32_t proposer = 0) {
  Block block;
  block.header.height = chain.Height() + 1;
  block.header.prev_hash = chain.Tip().header.Hash();
  block.header.timestamp_us = chain.Tip().header.timestamp_us + 1000;
  block.header.proposer = proposer;
  block.header.merkle_root = block.ComputeMerkleRoot();
  return block;
}

TEST(BlockchainTest, StartsAtGenesis) {
  Blockchain chain;
  EXPECT_EQ(chain.Height(), 0u);
  EXPECT_EQ(chain.NumBlocks(), 1u);
  EXPECT_EQ(chain.Tip().header.Hash(), MakeGenesisBlock().header.Hash());
}

TEST(BlockchainTest, AppendsValidBlocks) {
  Blockchain chain;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(chain.Append(NextBlock(chain)).ok());
    EXPECT_EQ(chain.Height(), static_cast<uint64_t>(i));
  }
  auto block3 = chain.GetBlock(3);
  ASSERT_TRUE(block3.ok());
  EXPECT_EQ(block3->header.height, 3u);
}

TEST(BlockchainTest, GetBlockOutOfRange) {
  Blockchain chain;
  EXPECT_TRUE(chain.GetBlock(1).status().IsOutOfRange());
}

TEST(BlockchainTest, RejectsWrongHeight) {
  Blockchain chain;
  Block block = NextBlock(chain);
  block.header.height = 5;
  EXPECT_TRUE(chain.Append(block).IsInvalidArgument());
  EXPECT_EQ(chain.Height(), 0u);
}

TEST(BlockchainTest, RejectsWrongParentHash) {
  Blockchain chain;
  Block block = NextBlock(chain);
  block.header.prev_hash[0] ^= 1;
  EXPECT_TRUE(chain.Append(block).IsInvalidArgument());
}

TEST(BlockchainTest, RejectsMerkleMismatch) {
  Blockchain chain;
  Block block = NextBlock(chain);
  block.header.merkle_root[0] ^= 1;
  EXPECT_TRUE(chain.Append(block).IsCorruption());
}

TEST(BlockchainTest, RejectsBackwardsTimestamp) {
  Blockchain chain;
  ASSERT_TRUE(chain.Append(NextBlock(chain)).ok());
  Block block = NextBlock(chain);
  block.header.timestamp_us = 0;
  EXPECT_TRUE(chain.Append(block).IsInvalidArgument());
}

TEST(BlockchainTest, FindTransactionLocatesByHash) {
  Blockchain chain;
  crypto::Schnorr scheme;
  Xoshiro256 rng(1);
  auto key = scheme.GenerateKeyPair(&rng);

  Block block = NextBlock(chain);
  Transaction tx;
  tx.contract = "c";
  tx.method = "m";
  tx.nonce = 7;
  tx.Sign(scheme, key, &rng);
  block.txs.push_back(tx);
  block.header.merkle_root = block.ComputeMerkleRoot();
  ASSERT_TRUE(chain.Append(block).ok());

  auto location = chain.FindTransaction(tx.Hash());
  ASSERT_TRUE(location.ok());
  EXPECT_EQ(location->first, 1u);
  EXPECT_EQ(location->second, 0u);

  crypto::Digest unknown{};
  EXPECT_TRUE(chain.FindTransaction(unknown).status().IsNotFound());
  EXPECT_EQ(chain.TotalTransactions(), 1u);
}

}  // namespace
}  // namespace bcfl::chain
