#include "crypto/schnorr.h"

#include <gtest/gtest.h>

namespace bcfl::crypto {
namespace {

Bytes Msg(const std::string& s) { return Bytes(s.begin(), s.end()); }

class SchnorrTest : public ::testing::Test {
 protected:
  Schnorr scheme_;
  Xoshiro256 rng_{4242};
};

TEST_F(SchnorrTest, SignVerifyRoundTrip) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("transfer 10 tokens");
  SchnorrSignature sig = scheme_.Sign(key, msg, &rng_);
  EXPECT_TRUE(scheme_.Verify(key.public_key, msg, sig));
}

TEST_F(SchnorrTest, TamperedMessageFails) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  SchnorrSignature sig = scheme_.Sign(key, Msg("original"), &rng_);
  EXPECT_FALSE(scheme_.Verify(key.public_key, Msg("originaL"), sig));
}

TEST_F(SchnorrTest, WrongPublicKeyFails) {
  SchnorrKeyPair alice = scheme_.GenerateKeyPair(&rng_);
  SchnorrKeyPair bob = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("hello");
  SchnorrSignature sig = scheme_.Sign(alice, msg, &rng_);
  EXPECT_FALSE(scheme_.Verify(bob.public_key, msg, sig));
}

TEST_F(SchnorrTest, TamperedSignatureComponentsFail) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("payload");
  SchnorrSignature sig = scheme_.Sign(key, msg, &rng_);

  SchnorrSignature bad_r = sig;
  bad_r.r = bad_r.r.ModAdd(UInt256(1), scheme_.params().p);
  EXPECT_FALSE(scheme_.Verify(key.public_key, msg, bad_r));

  SchnorrSignature bad_s = sig;
  bad_s.s = bad_s.s.Add(UInt256(1));
  EXPECT_FALSE(scheme_.Verify(key.public_key, msg, bad_s));
}

TEST_F(SchnorrTest, RejectsOutOfGroupValues) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("x");
  SchnorrSignature sig = scheme_.Sign(key, msg, &rng_);

  SchnorrSignature zero_r = sig;
  zero_r.r = UInt256(0);
  EXPECT_FALSE(scheme_.Verify(key.public_key, msg, zero_r));

  // Public key outside the modulus.
  UInt256 huge = scheme_.params().p.Add(UInt256(5));
  EXPECT_FALSE(scheme_.Verify(huge, msg, sig));
}

TEST_F(SchnorrTest, EmptyMessageSigns) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  SchnorrSignature sig = scheme_.Sign(key, Bytes{}, &rng_);
  EXPECT_TRUE(scheme_.Verify(key.public_key, Bytes{}, sig));
}

TEST_F(SchnorrTest, DistinctNoncesPerSignature) {
  // Two signatures over the same message must differ (fresh k).
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("same");
  SchnorrSignature s1 = scheme_.Sign(key, msg, &rng_);
  SchnorrSignature s2 = scheme_.Sign(key, msg, &rng_);
  EXPECT_NE(s1.r, s2.r);
  EXPECT_TRUE(scheme_.Verify(key.public_key, msg, s1));
  EXPECT_TRUE(scheme_.Verify(key.public_key, msg, s2));
}

TEST_F(SchnorrTest, SerializationRoundTrip) {
  SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
  Bytes msg = Msg("serialize me");
  SchnorrSignature sig = scheme_.Sign(key, msg, &rng_);
  Bytes wire = sig.ToBytes();
  ASSERT_EQ(wire.size(), 64u);
  auto back = SchnorrSignature::FromBytes(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->r, sig.r);
  EXPECT_EQ(back->s, sig.s);
  EXPECT_TRUE(scheme_.Verify(key.public_key, msg, *back));
}

TEST_F(SchnorrTest, FromBytesRejectsWrongSize) {
  EXPECT_FALSE(SchnorrSignature::FromBytes(Bytes(63)).ok());
  EXPECT_FALSE(SchnorrSignature::FromBytes(Bytes(65)).ok());
}

TEST_F(SchnorrTest, ReferenceVerifyAgreesWithOptimizedPath) {
  // The optimized Montgomery/fixed-base path and the seed scalar path
  // must agree on accepts AND rejects, bit for bit.
  for (int i = 0; i < 4; ++i) {
    SchnorrKeyPair key = scheme_.GenerateKeyPair(&rng_);
    Bytes msg = Msg("equivalence " + std::to_string(i));
    SchnorrSignature sig = scheme_.Sign(key, msg, &rng_);
    EXPECT_TRUE(scheme_.Verify(key.public_key, msg, sig));
    EXPECT_TRUE(reference::SchnorrVerify(scheme_.params(), key.public_key,
                                         msg, sig));
    SchnorrSignature bad = sig;
    bad.s = bad.s.Add(UInt256(1));
    EXPECT_EQ(scheme_.Verify(key.public_key, msg, bad),
              reference::SchnorrVerify(scheme_.params(), key.public_key,
                                       msg, bad));
    EXPECT_FALSE(scheme_.Verify(key.public_key, msg, bad));
  }
}

TEST_F(SchnorrTest, ActivePathIsNamed) {
  std::string_view path = CryptoActivePath();
  EXPECT_TRUE(path == "montgomery" || path == "reference") << path;
}

class SchnorrManyKeysTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchnorrManyKeysTest, CrossVerificationMatrix) {
  Schnorr scheme;
  Xoshiro256 rng(GetParam());
  constexpr int kKeys = 3;
  std::vector<SchnorrKeyPair> keys;
  std::vector<SchnorrSignature> sigs;
  Bytes msg = Msg("matrix");
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(scheme.GenerateKeyPair(&rng));
    sigs.push_back(scheme.Sign(keys.back(), msg, &rng));
  }
  for (int i = 0; i < kKeys; ++i) {
    for (int j = 0; j < kKeys; ++j) {
      EXPECT_EQ(scheme.Verify(keys[i].public_key, msg, sigs[j]), i == j);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrManyKeysTest,
                         ::testing::Values(3, 17, 99));

}  // namespace
}  // namespace bcfl::crypto
