#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "fault/injector.h"

namespace bcfl::fault {
namespace {

TEST(FaultPlanTest, ParsesEveryEventKind) {
  auto plan = FaultPlan::Parse(
      "crash owner 2 @1\n"
      "recover owner 2 @4\n"
      "slow miner 0 @1..3 +20000us\n"
      "drop-submit owner 1 @2 x3\n"
      "duplicate miner 3 @0..5\n"
      "reorder miner 2 @1..2\n"
      "partition miners 0,1 @3..4\n"
      "crash miner 4 @2");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->events.size(), 8u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan->events[0].node_kind, NodeKind::kOwner);
  EXPECT_EQ(plan->events[0].node, 2u);
  EXPECT_EQ(plan->events[0].round, 1u);
  EXPECT_EQ(plan->events[2].delay_us, 20000u);
  EXPECT_EQ(plan->events[2].end_round, 3u);
  EXPECT_EQ(plan->events[3].count, 3u);
  EXPECT_EQ(plan->events[6].members, (std::vector<uint32_t>{0, 1}));
}

TEST(FaultPlanTest, SemicolonsAndCommentsAreAccepted) {
  auto plan = FaultPlan::Parse(
      "# chaos for the demo\n"
      "crash owner 0 @1; recover owner 0 @2  # transient\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->events.size(), 2u);
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  auto plan = FaultPlan::Parse(
      "crash owner 2 @1; slow miner 0 @1..3 +500us; "
      "drop-submit owner 1 @2 x3; partition miners 0,1 @3..4; "
      "duplicate miner 3 @0..5; reorder miner 2 @2");
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(plan->ToString(), reparsed->ToString());
  EXPECT_EQ(plan->events.size(), reparsed->events.size());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("explode owner 1 @0").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash owner 1").ok());        // No round.
  EXPECT_FALSE(FaultPlan::Parse("crash gremlin 1 @0").ok());   // Bad kind.
  EXPECT_FALSE(FaultPlan::Parse("partition owners 0,1 @0").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash owner x @0").ok());     // Bad id.
  EXPECT_FALSE(FaultPlan::Parse("slow miner 0 @3..1 +5us").ok());
}

TEST(FaultPlanTest, ParseRejectsOutOfRangeNumbers) {
  // All-digit tokens past 2^64-1 must fail as InvalidArgument, not throw.
  EXPECT_FALSE(
      FaultPlan::Parse("crash owner 99999999999999999999 @1").ok());
  EXPECT_FALSE(
      FaultPlan::Parse("crash owner 1 @99999999999999999999").ok());
  EXPECT_FALSE(
      FaultPlan::Parse("slow miner 0 @1 +99999999999999999999us").ok());
}

TEST(FaultPlanTest, ValidateReplaysOutOfOrderEventsByRound) {
  // Listing the recover before its crash must not change the semantics:
  // miner 0 is back from round 3 on, so rounds >= 4 lose only miner 1
  // and the plan keeps a 2/3 majority throughout.
  auto plan = FaultPlan::Parse(
      "recover miner 0 @3; crash miner 0 @2; crash miner 1 @4");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Validate(4, 3, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsKindTargetMismatches) {
  auto drop = FaultPlan::Parse("drop-submit miner 1 @0");
  auto dup = FaultPlan::Parse("duplicate owner 1 @0");
  ASSERT_TRUE(drop.ok());
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(drop->Validate(4, 3, 3).ok());
  EXPECT_FALSE(dup->Validate(4, 3, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeIds) {
  auto plan = FaultPlan::Parse("crash owner 7 @0");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(4, 3, 3).ok());
  EXPECT_TRUE(plan->Validate(8, 3, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsCrashesBeyondShamirBudget) {
  // 4 owners, threshold 3: at most one owner may ever crash.
  auto one = FaultPlan::Parse("crash owner 0 @0");
  auto two = FaultPlan::Parse("crash owner 0 @0; crash owner 1 @1");
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(one->Validate(4, 3, 3).ok());
  EXPECT_FALSE(two->Validate(4, 3, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsMinerMajorityLoss) {
  // 3 miners: two crashed leaves one online, below strict majority.
  auto plan = FaultPlan::Parse("crash miner 0 @0; crash miner 1 @0");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(4, 3, 3).ok());
  // The same crashes are fine on a 5-miner roster.
  EXPECT_TRUE(plan->Validate(4, 5, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsEvenPartitionSplit) {
  // 4 miners split 2/2: no majority component remains.
  auto plan = FaultPlan::Parse("partition miners 0,1 @0");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(4, 4, 3).ok());
  EXPECT_TRUE(plan->Validate(4, 5, 3).ok());
}

TEST(FaultPlanTest, ValidateRejectsInvertedIntervals) {
  FaultPlan plan;
  FaultEvent event;
  event.kind = FaultKind::kSlow;
  event.node_kind = NodeKind::kMiner;
  event.node = 0;
  event.round = 3;
  event.end_round = 1;
  event.delay_us = 10;
  plan.events.push_back(event);
  EXPECT_FALSE(plan.Validate(4, 3, 3).ok());
}

TEST(FaultPlanTest, ParsesByzantineEventKinds) {
  auto plan = FaultPlan::Parse(
      "bad-share owner 3 @1..2\n"
      "inconsistent-mask owner 0 @1\n"
      "equivocate-submit owner 2 @0\n"
      "poison-update owner 4 @2 *50");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->events.size(), 4u);
  EXPECT_EQ(plan->events[0].kind, FaultKind::kBadShare);
  EXPECT_EQ(plan->events[0].end_round, 2u);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kInconsistentMask);
  EXPECT_EQ(plan->events[2].kind, FaultKind::kEquivocateSubmit);
  EXPECT_EQ(plan->events[3].kind, FaultKind::kPoisonUpdate);
  EXPECT_EQ(plan->events[3].magnitude, 50.0);
  // And the byzantine grammar round-trips.
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(plan->ToString(), reparsed->ToString());
}

TEST(FaultPlanTest, ParseFuzzRejectsMalformedByzantineSpecs) {
  // Unknown kinds near the real ones.
  EXPECT_FALSE(FaultPlan::Parse("bad-shares owner 1 @0").ok());
  EXPECT_FALSE(FaultPlan::Parse("equivocate owner 1 @0").ok());
  EXPECT_FALSE(FaultPlan::Parse("poison owner 1 @0 *50").ok());
  // poison-update without (or with malformed) magnitude.
  EXPECT_FALSE(FaultPlan::Parse("poison-update owner 1 @0").ok());
  EXPECT_FALSE(FaultPlan::Parse("poison-update owner 1 @0 *").ok());
  EXPECT_FALSE(FaultPlan::Parse("poison-update owner 1 @0 *abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("poison-update owner 1 @0 *1.2.3").ok());
  // Out-of-range numbers survive as parse errors, not UB.
  EXPECT_FALSE(
      FaultPlan::Parse("bad-share owner 99999999999999999999 @0").ok());
  EXPECT_FALSE(
      FaultPlan::Parse("poison-update owner 1 @0 *1e999999").ok());
}

TEST(FaultPlanTest, ValidateRejectsByzantineEventsAimedAtMiners) {
  for (const char* spec :
       {"bad-share miner 0 @0", "inconsistent-mask miner 0 @0",
        "equivocate-submit miner 0 @0", "poison-update miner 0 @0 *50"}) {
    auto plan = FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << spec;
    EXPECT_FALSE(plan->Validate(6, 3, 4).ok()) << spec;
  }
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeByzantineOwner) {
  auto plan = FaultPlan::Parse("bad-share owner 7 @0");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Validate(6, 3, 4).ok());
  EXPECT_TRUE(plan->Validate(8, 3, 5).ok());
}

TEST(FaultPlanTest, ValidateCountsByzantineOwnersAgainstShamirBudget) {
  // A slashed byzantine owner is retired exactly like a crashed one, so
  // the union of crashed and byzantine owners spends the same budget:
  // 6 owners, threshold 4 -> at most 2 may go down.
  auto two = FaultPlan::Parse("crash owner 1 @1; bad-share owner 3 @1");
  auto three = FaultPlan::Parse(
      "crash owner 1 @1; bad-share owner 3 @1; equivocate-submit owner 5 @1");
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(three.ok());
  EXPECT_TRUE(two->Validate(6, 3, 4).ok());
  EXPECT_FALSE(three->Validate(6, 3, 4).ok());
  // The same owner misbehaving twice spends one slot, not two.
  auto repeat = FaultPlan::Parse(
      "bad-share owner 3 @1; poison-update owner 3 @2 *50; crash owner 1 @1");
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->Validate(6, 3, 4).ok());
}

TEST(FaultPlanTest, ValidateRejectsPoisonMagnitudeAtOrBelowOne) {
  FaultPlan plan;
  FaultEvent event;
  event.kind = FaultKind::kPoisonUpdate;
  event.node_kind = NodeKind::kOwner;
  event.node = 1;
  event.round = 0;
  event.magnitude = 1.0;  // Scaling by 1 poisons nothing.
  plan.events.push_back(event);
  EXPECT_FALSE(plan.Validate(6, 3, 4).ok());
  plan.events[0].magnitude = 1.5;
  EXPECT_TRUE(plan.Validate(6, 3, 4).ok());
}

TEST(FaultPlanTest, RandomByzantinePlansRespectTheEnvelope) {
  FaultPlanOptions options;
  options.byzantine_rate = 0.5;
  const size_t threshold = options.num_owners / 2 + 1;
  bool saw_byzantine = false;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan plan = FaultPlan::Random(seed, options);
    EXPECT_TRUE(
        plan.Validate(options.num_owners, options.num_miners, threshold).ok())
        << "seed " << seed << "\n"
        << plan.ToString();
    for (const auto& event : plan.events) {
      if (event.kind == FaultKind::kBadShare ||
          event.kind == FaultKind::kInconsistentMask ||
          event.kind == FaultKind::kEquivocateSubmit ||
          event.kind == FaultKind::kPoisonUpdate) {
        saw_byzantine = true;
      }
    }
  }
  EXPECT_TRUE(saw_byzantine);
}

TEST(FaultPlanTest, ZeroByzantineRateKeepsOldSeedsBitIdentical) {
  // byzantine_rate = 0 (the default) must not perturb the RNG stream of
  // pre-PR-9 random plans: seeded chaos suites stay reproducible.
  FaultPlanOptions old_options;
  FaultPlanOptions new_options;
  new_options.byzantine_rate = 0.0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    EXPECT_EQ(FaultPlan::Random(seed, old_options).ToString(),
              FaultPlan::Random(seed, new_options).ToString());
  }
}

TEST(FaultInjectorTest, ByzantineQueriesTrackRounds) {
  auto plan = FaultPlan::Parse(
      "bad-share owner 3 @1..2; equivocate-submit owner 2 @1; "
      "inconsistent-mask owner 0 @1; poison-update owner 4 @1 *50");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 6, 3);
  injector.BeginRound(0);
  EXPECT_FALSE(injector.OwnerForgesShare(3));
  EXPECT_FALSE(injector.OwnerEquivocates(2));
  EXPECT_FALSE(injector.OwnerInconsistentMask(0));
  EXPECT_EQ(injector.OwnerPoisonMagnitude(4), 0.0);
  injector.BeginRound(1);
  EXPECT_TRUE(injector.OwnerForgesShare(3));
  EXPECT_FALSE(injector.OwnerForgesShare(2));
  EXPECT_TRUE(injector.OwnerEquivocates(2));
  EXPECT_TRUE(injector.OwnerInconsistentMask(0));
  EXPECT_EQ(injector.OwnerPoisonMagnitude(4), 50.0);
  injector.BeginRound(2);
  EXPECT_TRUE(injector.OwnerForgesShare(3));  // Interval end inclusive.
  EXPECT_FALSE(injector.OwnerEquivocates(2));
  EXPECT_EQ(injector.OwnerPoisonMagnitude(4), 0.0);
}

TEST(FaultPlanTest, RandomPlansAlwaysValidate) {
  FaultPlanOptions options;  // 9 owners, 5 miners, 10 rounds.
  const size_t threshold = options.num_owners / 2 + 1;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    FaultPlan plan = FaultPlan::Random(seed, options);
    EXPECT_TRUE(plan.Validate(options.num_owners, options.num_miners,
                              threshold)
                    .ok())
        << "seed " << seed << "\n"
        << plan.ToString();
  }
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  FaultPlanOptions options;
  EXPECT_EQ(FaultPlan::Random(7, options).ToString(),
            FaultPlan::Random(7, options).ToString());
  // Different seeds should (essentially always) differ.
  EXPECT_NE(FaultPlan::Random(7, options).ToString(),
            FaultPlan::Random(8, options).ToString());
}

TEST(FaultInjectorTest, CrashAndRecoverWindowsTrackRounds) {
  auto plan = FaultPlan::Parse(
      "crash owner 2 @1; recover owner 2 @3; crash miner 1 @2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);

  injector.BeginRound(0);
  EXPECT_FALSE(injector.OwnerOffline(2));
  EXPECT_FALSE(injector.MinerOffline(1));
  injector.BeginRound(1);
  EXPECT_TRUE(injector.OwnerOffline(2));
  injector.BeginRound(2);
  EXPECT_TRUE(injector.OwnerOffline(2));
  EXPECT_TRUE(injector.MinerOffline(1));
  injector.BeginRound(3);
  EXPECT_FALSE(injector.OwnerOffline(2));  // Recovered.
  EXPECT_TRUE(injector.MinerOffline(1));   // Never recovers.
}

TEST(FaultInjectorTest, OutOfOrderCrashRecoverReplaysByRound) {
  // The recover is listed first; the latest event at or before the round
  // must still decide, so miner 0 is offline in [2, 5) and back at 5.
  auto plan = FaultPlan::Parse("recover miner 0 @5; crash miner 0 @2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);

  injector.BeginRound(3);
  EXPECT_TRUE(injector.MinerOffline(0));
  injector.BeginRound(5);
  EXPECT_FALSE(injector.MinerOffline(0));
  injector.BeginRound(6);
  EXPECT_FALSE(injector.MinerOffline(0));
}

TEST(FaultInjectorTest, SubmitDropBudgetIsPerRound) {
  auto plan = FaultPlan::Parse("drop-submit owner 1 @2 x2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);

  injector.BeginRound(1);
  EXPECT_FALSE(injector.DropSubmissionAttempt(1));
  injector.BeginRound(2);
  EXPECT_TRUE(injector.DropSubmissionAttempt(1));
  EXPECT_TRUE(injector.DropSubmissionAttempt(1));
  EXPECT_FALSE(injector.DropSubmissionAttempt(1));  // Budget spent.
  EXPECT_FALSE(injector.DropSubmissionAttempt(0));  // Other owners clean.
  injector.BeginRound(3);
  EXPECT_FALSE(injector.DropSubmissionAttempt(1));  // Not re-armed.
}

TEST(FaultInjectorTest, SlowWindowAddsOwnerDelay) {
  auto plan = FaultPlan::Parse("slow owner 1 @1..2 +5000us");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);
  injector.BeginRound(0);
  EXPECT_EQ(injector.OwnerExtraDelayUs(1), 0u);
  injector.BeginRound(1);
  EXPECT_EQ(injector.OwnerExtraDelayUs(1), 5000u);
  EXPECT_EQ(injector.OwnerExtraDelayUs(0), 0u);
  injector.BeginRound(3);
  EXPECT_EQ(injector.OwnerExtraDelayUs(1), 0u);
}

net::Message MinerMessage(uint32_t from, uint32_t to) {
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.payload = {1, 2, 3};
  return msg;
}

TEST(FaultInjectorTest, FilterDropsTrafficTouchingCrashedMiners) {
  auto plan = FaultPlan::Parse("crash miner 1 @0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 4);
  injector.BeginRound(0);
  EXPECT_TRUE(injector.FilterMessage(MinerMessage(1, 2)).drop);
  EXPECT_TRUE(injector.FilterMessage(MinerMessage(2, 1)).drop);
  EXPECT_FALSE(injector.FilterMessage(MinerMessage(0, 2)).drop);
}

TEST(FaultInjectorTest, PartitionDropsCrossCellTrafficOnly) {
  auto plan = FaultPlan::Parse("partition miners 0,1 @0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 5);
  injector.BeginRound(0);
  EXPECT_FALSE(injector.FilterMessage(MinerMessage(0, 1)).drop);  // Same cell.
  EXPECT_FALSE(injector.FilterMessage(MinerMessage(2, 3)).drop);  // Same cell.
  EXPECT_TRUE(injector.FilterMessage(MinerMessage(0, 2)).drop);
  EXPECT_TRUE(injector.FilterMessage(MinerMessage(3, 1)).drop);
  EXPECT_FALSE(injector.MinersReachable(0, 4));
  EXPECT_TRUE(injector.MinersReachable(2, 4));
  // Window over: everything flows again.
  injector.BeginRound(1);
  EXPECT_FALSE(injector.FilterMessage(MinerMessage(0, 2)).drop);
  EXPECT_TRUE(injector.MinersReachable(0, 2));
}

TEST(FaultInjectorTest, DuplicateWindowFansOutSenderTraffic) {
  auto plan = FaultPlan::Parse("duplicate miner 0 @0..1");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);
  injector.BeginRound(0);
  EXPECT_EQ(injector.FilterMessage(MinerMessage(0, 1)).duplicates, 1u);
  EXPECT_EQ(injector.FilterMessage(MinerMessage(1, 0)).duplicates, 0u);
  injector.BeginRound(2);
  EXPECT_EQ(injector.FilterMessage(MinerMessage(0, 1)).duplicates, 0u);
}

TEST(FaultInjectorTest, ReorderWindowJittersDeterministically) {
  auto plan = FaultPlan::Parse("reorder miner 0 @0");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);
  injector.BeginRound(0);
  net::Message msg = MinerMessage(0, 1);
  msg.deliver_at_us = 1234;
  uint64_t first = injector.FilterMessage(msg).extra_delay_us;
  EXPECT_EQ(injector.FilterMessage(msg).extra_delay_us, first);
  // Non-reordering senders are untouched.
  EXPECT_EQ(injector.FilterMessage(MinerMessage(1, 0)).extra_delay_us, 0u);
}

TEST(FaultInjectorTest, ExecutedScheduleRecordsWhatFired) {
  auto plan = FaultPlan::Parse("crash owner 1 @0; recover owner 1 @2");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan, 4, 3);
  injector.BeginRound(0);
  injector.BeginRound(1);
  injector.BeginRound(2);
  injector.RecordExecuted(2, "owner 1 recovered on chain");
  EXPECT_GE(injector.executed_events(), 3u);
  std::string json = injector.ExecutedScheduleJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("owner 1 recovered on chain"), std::string::npos);
}

}  // namespace
}  // namespace bcfl::fault
