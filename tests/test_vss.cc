#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/shamir.h"

namespace bcfl::crypto {
namespace {

using SSS = ShamirSecretSharing;

Bytes RandomSecret(size_t len, Xoshiro256* rng) {
  Bytes secret(len);
  for (auto& b : secret) b = static_cast<uint8_t>(rng->Next());
  return secret;
}

TEST(VssGroupTest, GeneratorHasOrderExactlyKPrime) {
  const GroupParams group = SSS::VssGroup();
  // P = 52 * kPrime + 1 = 13 * 2^63 - 51, a 65-bit prime, so the product
  // must be assembled limb-wise rather than in uint64 arithmetic.
  const UInt256 expected_p((13ULL << 63) - 51, 13ULL >> 1, 0, 0);
  EXPECT_EQ(group.p, expected_p);
  EXPECT_NE(group.g, UInt256(1));
  // g^kPrime == 1 and g^1 != 1: ord(g) divides the prime kPrime and is
  // not 1, so it is exactly kPrime — exponent arithmetic mod kPrime is
  // faithful to the group.
  EXPECT_EQ(group.g.ModPow(UInt256(SSS::kPrime), group.p), UInt256(1));
}

TEST(VssTest, SplitVerifiableSharesAllVerify) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(100);
  const Bytes secret = RandomSecret(32, &rng);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(secret, &rng, &commitment);
  ASSERT_EQ(shares.size(), 5u);
  ASSERT_FALSE(commitment.empty());
  // One polynomial row per 7-byte chunk, threshold coefficients each.
  EXPECT_EQ(commitment.rows.size(), (32 + SSS::kChunkBytes - 1) /
                                        SSS::kChunkBytes);
  for (const auto& row : commitment.rows) EXPECT_EQ(row.size(), 3u);
  for (const auto& share : shares) {
    EXPECT_TRUE(scheme->VerifyShare(share, commitment));
  }
}

TEST(VssTest, SplitVerifiableConsumesIdenticalRngStream) {
  // The seeded protocol must produce bit-identical shares whether or not
  // commitments are requested: SplitVerifiable derives the commitment
  // from the same coefficients, drawing no extra randomness.
  auto scheme = SSS::Create(4, 7);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng_a(200);
  Xoshiro256 rng_b(200);
  const Bytes secret = RandomSecret(29, &rng_a);
  (void)RandomSecret(29, &rng_b);  // Keep the streams aligned.

  auto plain = scheme->Split(secret, &rng_a);
  VssCommitment commitment;
  auto verifiable = scheme->SplitVerifiable(secret, &rng_b, &commitment);
  ASSERT_EQ(plain.size(), verifiable.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].x, verifiable[i].x);
    EXPECT_EQ(plain[i].values, verifiable[i].values);
  }
  // And the streams end at the same position.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(VssTest, ForgedShareValueFailsVerification) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(300);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(RandomSecret(16, &rng), &rng,
                                        &commitment);
  // The minimal in-field perturbation a byzantine holder can apply.
  ShamirShare forged = shares[2];
  forged.values[0] = SSS::FieldAdd(forged.values[0], 1);
  EXPECT_FALSE(scheme->VerifyShare(forged, commitment));
  // The untouched chunks alone do not rescue it; the original passes.
  EXPECT_TRUE(scheme->VerifyShare(shares[2], commitment));
}

TEST(VssTest, ShareAtWrongCoordinateFailsVerification) {
  auto scheme = SSS::Create(2, 4);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(301);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(RandomSecret(8, &rng), &rng,
                                        &commitment);
  // Claiming another roster slot's x with one's own values is a forgery.
  ShamirShare moved = shares[0];
  moved.x = shares[1].x;
  EXPECT_FALSE(scheme->VerifyShare(moved, commitment));
}

TEST(VssTest, StructurallyInvalidSharesFailClosed) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(302);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(RandomSecret(21, &rng), &rng,
                                        &commitment);

  ShamirShare zero_x = shares[0];
  zero_x.x = 0;  // x = 0 would "share" the secret itself.
  EXPECT_FALSE(scheme->VerifyShare(zero_x, commitment));

  ShamirShare big_x = shares[0];
  big_x.x = SSS::kPrime;  // Out of field.
  EXPECT_FALSE(scheme->VerifyShare(big_x, commitment));

  ShamirShare big_value = shares[0];
  big_value.values[0] = SSS::kPrime;  // Out of field.
  EXPECT_FALSE(scheme->VerifyShare(big_value, commitment));

  ShamirShare short_share = shares[0];
  short_share.values.pop_back();  // Chunk count != commitment rows.
  EXPECT_FALSE(scheme->VerifyShare(short_share, commitment));

  ShamirShare long_share = shares[0];
  long_share.values.push_back(1);
  EXPECT_FALSE(scheme->VerifyShare(long_share, commitment));

  // A commitment with the wrong coefficient count (degree mismatch)
  // likewise convicts rather than erroring.
  VssCommitment truncated = commitment;
  for (auto& row : truncated.rows) row.pop_back();
  EXPECT_FALSE(scheme->VerifyShare(shares[0], truncated));

  EXPECT_FALSE(scheme->VerifyShare(shares[0], VssCommitment{}));
}

TEST(VssTest, ExactlyThresholdRosterVerifiesAndReconstructs) {
  // threshold == num_shares: every single holder is load-bearing.
  auto scheme = SSS::Create(4, 4);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(303);
  const Bytes secret = RandomSecret(32, &rng);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(secret, &rng, &commitment);
  for (const auto& share : shares) {
    EXPECT_TRUE(scheme->VerifyShare(share, commitment));
  }
  auto back = scheme->Reconstruct(shares, secret.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, secret);
  // With one share forged, verification pinpoints it and the remaining
  // three cannot meet the threshold — recovery must fail closed, never
  // reconstruct a wrong key.
  shares[1].values[0] = SSS::FieldAdd(shares[1].values[0], 1);
  EXPECT_FALSE(scheme->VerifyShare(shares[1], commitment));
}

TEST(VssTest, BatchPathMatchesReferenceVerification) {
  // The Montgomery GroupContext path and the plain-ModPow reference must
  // agree on every verdict — accepting and rejecting alike.
  auto scheme = SSS::Create(3, 6);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(304);
  for (int trial = 0; trial < 4; ++trial) {
    VssCommitment commitment;
    auto shares = scheme->SplitVerifiable(
        RandomSecret(1 + static_cast<size_t>(trial) * 9, &rng), &rng,
        &commitment);
    for (auto& share : shares) {
      EXPECT_TRUE(scheme->VerifyShare(share, commitment));
      EXPECT_TRUE(scheme->VerifyShareReference(share, commitment));
      ShamirShare forged = share;
      forged.values.back() = SSS::FieldAdd(forged.values.back(), 1);
      EXPECT_FALSE(scheme->VerifyShare(forged, commitment));
      EXPECT_FALSE(scheme->VerifyShareReference(forged, commitment));
    }
  }
}

TEST(VssTest, CommitmentSerializationRoundTrips) {
  auto scheme = SSS::Create(3, 5);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(305);
  VssCommitment commitment;
  auto shares = scheme->SplitVerifiable(RandomSecret(20, &rng), &rng,
                                        &commitment);
  const Bytes wire = commitment.Serialize();
  auto back = VssCommitment::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, commitment);
  // The deserialized commitment still verifies the original shares.
  for (const auto& share : shares) {
    EXPECT_TRUE(scheme->VerifyShare(share, *back));
  }
}

TEST(VssTest, DeserializeRejectsMalformedInput) {
  auto scheme = SSS::Create(2, 3);
  ASSERT_TRUE(scheme.ok());
  Xoshiro256 rng(306);
  VssCommitment commitment;
  (void)scheme->SplitVerifiable(RandomSecret(10, &rng), &rng, &commitment);
  const Bytes wire = commitment.Serialize();

  // Truncation anywhere must be caught.
  for (size_t cut : {size_t{1}, wire.size() / 2, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(VssCommitment::Deserialize(truncated).ok()) << cut;
  }
  // Trailing bytes are not silently ignored.
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(VssCommitment::Deserialize(padded).ok());
  // An element >= P is outside the group.
  const GroupParams group = SSS::VssGroup();
  VssCommitment out_of_group = commitment;
  out_of_group.rows[0][0] = group.p;
  EXPECT_FALSE(VssCommitment::Deserialize(out_of_group.Serialize()).ok());
}

}  // namespace
}  // namespace bcfl::crypto
