#include "ml/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"

namespace bcfl::ml::kernels {
namespace {

std::vector<double> Random(size_t n, Xoshiro256* rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->NextDouble() * 2.0 - 1.0;
  return v;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

struct Shape {
  size_t m, k, n;
};

/// Edge shapes (empty, 1xN, Nx1, narrow, non-square) plus the dispatch
/// boundaries: <= 16 output columns takes the fixed-width kernels, wider
/// takes the generic path, >= 512 rows crosses the parallel threshold.
const Shape kEdgeShapes[] = {
    {0, 0, 0}, {0, 3, 4},  {1, 1, 1},  {1, 9, 1},    {6, 1, 3},
    {3, 4, 1}, {2, 2, 17}, {16, 16, 16}, {31, 7, 19}, {5, 65, 10},
};

TEST(KernelPropertyTest, GemmMatchesReferenceOnEdgeShapes) {
  Xoshiro256 rng(1);
  for (const Shape& s : kEdgeShapes) {
    std::vector<double> a = Random(s.m * s.k, &rng);
    std::vector<double> b = Random(s.k * s.n, &rng);
    std::vector<double> ref(s.m * s.n, 0.0), opt(s.m * s.n, 7.0);
    reference::Gemm(a.data(), s.m, s.k, b.data(), s.n, ref.data());
    Gemm(a.data(), s.m, s.k, b.data(), s.n, opt.data());
    if (s.m * s.n == 0) continue;
    EXPECT_TRUE(BitEqual(ref, opt)) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(KernelPropertyTest, GemmMatchesReferenceOnRandomShapes) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t m = 1 + rng.NextBounded(40);
    const size_t k = 1 + rng.NextBounded(80);
    const size_t n = 1 + rng.NextBounded(30);
    std::vector<double> a = Random(m * k, &rng);
    std::vector<double> b = Random(k * n, &rng);
    std::vector<double> ref(m * n, 0.0), opt(m * n, 7.0);
    reference::Gemm(a.data(), m, k, b.data(), n, ref.data());
    Gemm(a.data(), m, k, b.data(), n, opt.data());
    EXPECT_TRUE(BitEqual(ref, opt)) << m << "x" << k << "x" << n;
  }
}

TEST(KernelPropertyTest, GemmTransAMatchesReference) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t rows = 1 + rng.NextBounded(300);
    const size_t m = 1 + rng.NextBounded(40);
    const size_t n = 1 + rng.NextBounded(24);
    std::vector<double> a = Random(rows * m, &rng);
    std::vector<double> b = Random(rows * n, &rng);
    std::vector<double> ref(m * n, 0.0), opt(m * n, 7.0);
    reference::GemmTransA(a.data(), rows, m, b.data(), n, ref.data());
    GemmTransA(a.data(), rows, m, b.data(), n, opt.data());
    EXPECT_TRUE(BitEqual(ref, opt)) << rows << " rows, " << m << "x" << n;
  }
}

TEST(KernelPropertyTest, GemmHandlesZeroEntriesIdentically) {
  // The optimized path drops the seed's `if (a == 0.0) continue;` skip;
  // adding a +/-0.0 product must leave every finite accumulator bit
  // unchanged.
  Xoshiro256 rng(4);
  const size_t m = 9, k = 33, n = 11;
  std::vector<double> a = Random(m * k, &rng);
  std::vector<double> b = Random(k * n, &rng);
  for (size_t i = 0; i < a.size(); i += 3) a[i] = 0.0;
  for (size_t i = 1; i < a.size(); i += 7) a[i] = -0.0;
  std::vector<double> ref(m * n, 0.0), opt(m * n, 7.0);
  reference::Gemm(a.data(), m, k, b.data(), n, ref.data());
  Gemm(a.data(), m, k, b.data(), n, opt.data());
  EXPECT_TRUE(BitEqual(ref, opt));
}

TEST(KernelPropertyTest, TransposeMatchesReference) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t r = 1 + rng.NextBounded(100);
    const size_t c = 1 + rng.NextBounded(100);
    std::vector<double> a = Random(r * c, &rng);
    std::vector<double> ref(c * r, 0.0), opt(c * r, 7.0);
    reference::Transpose(a.data(), r, c, ref.data());
    Transpose(a.data(), r, c, opt.data());
    EXPECT_TRUE(BitEqual(ref, opt)) << r << "x" << c;
  }
}

TEST(KernelPropertyTest, AxpyMatchesReference) {
  Xoshiro256 rng(6);
  std::vector<double> x = Random(257, &rng);
  std::vector<double> ref = Random(257, &rng);
  std::vector<double> opt = ref;
  reference::Axpy(0.37, x.data(), x.size(), ref.data());
  Axpy(0.37, x.data(), x.size(), opt.data());
  EXPECT_TRUE(BitEqual(ref, opt));
}

TEST(KernelPropertyTest, SoftmaxRowsMatchesReference) {
  Xoshiro256 rng(7);
  for (size_t cols : {size_t{1}, size_t{2}, size_t{10}, size_t{33}}) {
    const size_t rows = 1 + rng.NextBounded(50);
    std::vector<double> ref = Random(rows * cols, &rng);
    std::vector<double> opt = ref;
    reference::SoftmaxRows(ref.data(), rows, cols);
    SoftmaxRows(opt.data(), rows, cols);
    EXPECT_TRUE(BitEqual(ref, opt)) << rows << "x" << cols;
  }
}

TEST(KernelPropertyTest, FusedStepMatchesReferenceOnRandomShapes) {
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t rows = 1 + rng.NextBounded(400);
    const size_t cols = 1 + rng.NextBounded(40);
    const size_t classes = 2 + rng.NextBounded(11);
    std::vector<double> aug = Random(rows * cols, &rng);
    std::vector<int> labels(rows);
    for (int& l : labels) l = static_cast<int>(rng.NextBounded(classes));
    std::vector<double> w_ref(cols * classes, 0.0),
        w_opt(cols * classes, 0.0);
    FusedStepScratch scratch;
    for (int epoch = 0; epoch < 3; ++epoch) {
      const double loss_ref = reference::FusedSoftmaxCeStep(
          aug.data(), rows, cols, labels.data(), classes, 0.05, 1e-4,
          w_ref.data());
      const double loss_opt =
          FusedSoftmaxCeStep(aug.data(), rows, cols, labels.data(), classes,
                             0.05, 1e-4, w_opt.data(), &scratch);
      EXPECT_EQ(loss_ref, loss_opt)
          << rows << "x" << cols << " c=" << classes << " epoch " << epoch;
    }
    EXPECT_TRUE(BitEqual(w_ref, w_opt))
        << rows << "x" << cols << " c=" << classes;
  }
}

TEST(KernelPropertyTest, ParallelGemmBitIdenticalAcrossPoolSizes) {
  Xoshiro256 rng(9);
  const size_t m = 1027, k = 65, n = 10;  // Above the parallel threshold.
  std::vector<double> a = Random(m * k, &rng);
  std::vector<double> b = Random(k * n, &rng);
  std::vector<double> serial(m * n, 0.0);
  Gemm(a.data(), m, k, b.data(), n, serial.data());
  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    SetParallelPool(&pool);
    std::vector<double> parallel(m * n, 7.0);
    Gemm(a.data(), m, k, b.data(), n, parallel.data());
    SetParallelPool(nullptr);
    EXPECT_TRUE(BitEqual(serial, parallel)) << workers << " workers";
  }
  EXPECT_EQ(ParallelPool(), nullptr);
}

TEST(KernelPropertyTest, ActivePathIsKnown) {
  const std::string path = ActivePath();
  EXPECT_TRUE(path == "reference" || path == "scalar" || path == "avx2")
      << path;
}

// Regression for the overflow guard: SoftmaxRowsInPlace subtracts the
// row max before exp, so extreme logits must stay finite and normalized
// instead of collapsing to inf/NaN.
TEST(SoftmaxRowsInPlaceTest, ExtremeLogitsStayFinite) {
  Matrix logits(3, 4);
  const double rows[3][4] = {
      {1e6, -1e6, 0.0, 5e5},
      {-3e4, -3e4 + 1.0, -3e4 - 1.0, -3e4},
      {709.0, 710.0, 711.0, 712.0},  // exp(709) alone would overflow.
  };
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) logits.At(i, j) = rows[i][j];
  }
  SoftmaxRowsInPlace(&logits);
  for (size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 4; ++j) {
      const double p = logits.At(i, j);
      EXPECT_TRUE(std::isfinite(p)) << i << "," << j;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "row " << i;
  }
  // The max logit dominates each extreme row.
  EXPECT_NEAR(logits.At(0, 0), 1.0, 1e-12);
}

}  // namespace
}  // namespace bcfl::ml::kernels
