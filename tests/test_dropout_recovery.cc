// Dropout tolerance, from the contract's recover method up to the full
// coordinator round loop (promoted from examples/dropout_recovery.cpp).

#include <gtest/gtest.h>

#include <algorithm>

#include "chain/contract_host.h"
#include "core/coordinator.h"
#include "core/fl_contract.h"
#include "crypto/shamir.h"
#include "data/digits.h"
#include "secureagg/fixed_point.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

namespace bcfl::core {
namespace {

BcflConfig FaultableConfig() {
  BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 3;
  config.rounds = 3;
  config.num_groups = 2;
  config.seed = 21;
  config.seed_e = 5;
  config.sigma = 0.0;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 400;
  return config;
}

TEST(DropoutRecoveryTest, CrashedOwnerIsRecoveredRetiredAndFrozen) {
  BcflConfig config = FaultableConfig();
  config.fault_plan = *fault::FaultPlan::Parse("crash owner 2 @1");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());

  // The dropout was detected, recovered on chain and the owner retired.
  ASSERT_EQ(result->retired_at.size(), 1u);
  ASSERT_TRUE(result->retired_at.count(2) > 0);
  EXPECT_EQ(result->retired_at.at(2), 1u);
  EXPECT_GE(result->recover_transactions, 1u);

  // Every round still committed and evaluated.
  ASSERT_EQ(result->per_round_sv.size(), 3u);
  ASSERT_EQ(result->round_accuracies.size(), 3u);

  // SV freeze: owner 2 contributed in round 0, scores exactly zero from
  // the retirement round on.
  EXPECT_NE(result->per_round_sv[0][2], 0.0);
  EXPECT_EQ(result->per_round_sv[1][2], 0.0);
  EXPECT_EQ(result->per_round_sv[2][2], 0.0);
  double frozen = result->per_round_sv[0][2];
  EXPECT_NEAR(result->total_sv[2], frozen, 1e-9);

  // The on-chain retirement record exists and every miner agrees on it.
  auto& engine = (*coordinator)->engine();
  EXPECT_TRUE(engine.CanonicalState().Has(keys::Retired(2)));
  auto root = engine.miner(0).state().StateRoot();
  for (size_t m = 1; m < engine.num_miners(); ++m) {
    EXPECT_EQ(engine.miner(m).state().StateRoot(), root);
  }
}

TEST(DropoutRecoveryTest, RetiredOwnerSkipsRewardClaims) {
  BcflConfig config = FaultableConfig();
  config.reward_pool = 1'000'000;
  config.fault_plan = *fault::FaultPlan::Parse("crash owner 3 @0");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewards.size(), 4u);
  // Owner 3 never scored, so it claims nothing; survivors split the pool.
  EXPECT_EQ(result->rewards[3], 0u);
  uint64_t survivors = result->rewards[0] + result->rewards[1] +
                       result->rewards[2];
  EXPECT_EQ(survivors, 1'000'000u);
}

TEST(DropoutRecoveryTest, PersistentSubmissionLossBecomesDropout) {
  // The owner is online but the network eats every submission attempt:
  // the deadline/retry machinery gives it up and recovery retires it.
  BcflConfig config = FaultableConfig();
  config.fault_plan =
      *fault::FaultPlan::Parse("drop-submit owner 1 @1 x8");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->submission_retries, config.max_submit_attempts);
  ASSERT_TRUE(result->retired_at.count(1) > 0);
  EXPECT_EQ(result->retired_at.at(1), 1u);
  EXPECT_EQ(result->per_round_sv[1][1], 0.0);
  EXPECT_EQ(result->per_round_sv[2][1], 0.0);
}

TEST(DropoutRecoveryTest, TransientSubmissionLossRetriesThroughBackoff) {
  // Two lost attempts stay under max_submit_attempts: the owner lands
  // late but in time, so nobody drops and nothing is recovered.
  BcflConfig config = FaultableConfig();
  config.fault_plan =
      *fault::FaultPlan::Parse("drop-submit owner 1 @1 x2");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->submission_retries, 2u);
  EXPECT_TRUE(result->retired_at.empty());
  EXPECT_EQ(result->recover_transactions, 0u);
  EXPECT_NE(result->per_round_sv[1][1], 0.0);
}

TEST(DropoutRecoveryTest, UnderThresholdRecoveryFailsClosed) {
  // Threshold = all owners: with one owner missing only n-1 shares
  // survive, so the reveal must fail closed rather than guess a key.
  BcflConfig config = FaultableConfig();
  config.secure_agg_threshold = 4;
  config.fault_plan =
      *fault::FaultPlan::Parse("drop-submit owner 0 @0 x8");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(DropoutRecoveryTest, UnsafeCrashPlanIsRejectedAtSetup) {
  // A plan whose crashes would leave fewer than `threshold` share
  // holders is refused before any training happens.
  BcflConfig config = FaultableConfig();
  config.secure_agg_threshold = 4;
  config.fault_plan = *fault::FaultPlan::Parse("crash owner 0 @0");
  EXPECT_FALSE(BcflCoordinator::Create(config).ok());
}

TEST(DropoutRecoveryTest, FaultedRunIsEngineModeInvariant) {
  // The parallel round engine must not change what lands on chain, even
  // when the round hits the full dropout/recovery machinery: crashes,
  // eaten submissions, retirement, SV freezes.
  BcflConfig config = FaultableConfig();
  config.fault_plan = *fault::FaultPlan::Parse(
      "crash owner 2 @1; drop-submit owner 1 @2 x2");
  config.round_engine = RoundEngineMode::kSerial;
  auto serial_coord = BcflCoordinator::Create(config);
  ASSERT_TRUE(serial_coord.ok());
  auto serial = (*serial_coord)->Run();
  ASSERT_TRUE(serial.ok());

  config.round_engine = RoundEngineMode::kParallel;
  config.pool_threads = 3;
  auto parallel_coord = BcflCoordinator::Create(config);
  ASSERT_TRUE(parallel_coord.ok());
  auto parallel = (*parallel_coord)->Run();
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(serial->total_sv, parallel->total_sv);
  EXPECT_EQ(serial->per_round_sv, parallel->per_round_sv);
  EXPECT_EQ(serial->global_weights, parallel->global_weights);
  EXPECT_EQ(serial->round_accuracies, parallel->round_accuracies);
  EXPECT_EQ(serial->retired_at, parallel->retired_at);
  EXPECT_EQ(serial->recover_transactions, parallel->recover_transactions);
  EXPECT_EQ(serial->submission_retries, parallel->submission_retries);
  EXPECT_EQ(serial->blocks_committed, parallel->blocks_committed);
  EXPECT_EQ(serial->total_transactions, parallel->total_transactions);
  EXPECT_EQ((*serial_coord)->engine().CanonicalChain().Tip().header.Hash(),
            (*parallel_coord)->engine().CanonicalChain().Tip().header.Hash());
}

// --- Contract-level recovery semantics (the old example's scenario). ---

class RecoverContractTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kOwners = 4;
  static constexpr uint32_t kDropped = 2;
  static constexpr size_t kThreshold = 3;

  RecoverContractTest() : host_(schnorr_) {
    for (uint32_t i = 0; i < kOwners; ++i) {
      sign_keys_.push_back(schnorr_.GenerateKeyPair(&rng_));
      owners_.push_back(std::make_unique<secureagg::SecureAggParticipant>(
          i, dh_, &rng_, /*use_self_mask=*/false));
    }
    for (auto& p : owners_) {
      for (auto& q : owners_) {
        if (p->id() != q->id()) {
          EXPECT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
        }
      }
    }
    data::DigitsConfig digits;
    digits.num_instances = 400;
    ml::Dataset validation = data::DigitsGenerator(digits).Generate();
    EXPECT_TRUE(
        host_.Register(std::make_shared<FlContract>(validation)).ok());

    SetupParams params;
    params.num_owners = kOwners;
    params.rounds = 2;
    params.num_groups = 2;
    params.seed_e = 5;
    params.weight_rows = 65;
    params.weight_cols = 10;
    for (uint32_t i = 0; i < kOwners; ++i) {
      params.schnorr_public_keys.push_back(sign_keys_[i].public_key);
      params.dh_public_keys.push_back(owners_[i]->public_key());
    }
    chain::Transaction setup;
    setup.contract = "bcfl";
    setup.method = "setup";
    setup.payload = params.Serialize();
    setup.Sign(schnorr_, sign_keys_[0], &rng_);
    EXPECT_TRUE(host_.ExecuteTransaction(setup, &state_)->success);
    params_ = params;
  }

  /// Masks and submits owner `i`'s round-`round` update; returns the
  /// receipt's success flag.
  bool SubmitOwner(uint32_t i, uint64_t round, uint64_t nonce) {
    auto perm =
        shapley::PermutationFromSeed(params_.seed_e, round, kOwners);
    auto groups = shapley::GroupUsers(perm, params_.num_groups).value();
    std::vector<secureagg::OwnerId> members;
    for (const auto& group : groups) {
      if (std::find(group.begin(), group.end(), static_cast<size_t>(i)) !=
          group.end()) {
        for (size_t m : group) {
          members.push_back(static_cast<secureagg::OwnerId>(m));
        }
      }
    }
    secureagg::FixedPointCodec codec(24);
    ml::Matrix local = ml::Matrix::Gaussian(65, 10, 0.3, &rng_);
    auto masked =
        owners_[i]->MaskUpdate(round, members, codec.EncodeMatrix(local));
    EXPECT_TRUE(masked.ok());
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "submit_update";
    tx.payload = FlContract::EncodeSubmitUpdate(round, i, *masked);
    tx.nonce = nonce;
    tx.Sign(schnorr_, sign_keys_[i], &rng_);
    return host_.ExecuteTransaction(tx, &state_)->success;
  }

  chain::TxReceipt Recover(uint64_t round, const crypto::UInt256& key,
                           uint64_t nonce) {
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "recover";
    tx.payload = FlContract::EncodeRecover(round, kDropped, key);
    tx.nonce = nonce;
    tx.Sign(schnorr_, sign_keys_[0], &rng_);
    return *host_.ExecuteTransaction(tx, &state_);
  }

  Xoshiro256 rng_{99};
  crypto::Schnorr schnorr_;
  crypto::DiffieHellman dh_;
  std::vector<crypto::SchnorrKeyPair> sign_keys_;
  std::vector<std::unique_ptr<secureagg::SecureAggParticipant>> owners_;
  chain::ContractHost host_;
  chain::ContractState state_;
  SetupParams params_;
};

TEST_F(RecoverContractTest, ForgedKeyIsRejectedGenuineKeyCompletesRound) {
  // Everyone but owner 2 submits; the round stays open.
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == kDropped) continue;
    ASSERT_TRUE(SubmitOwner(i, 0, i + 1));
  }
  EXPECT_FALSE(state_.Has(keys::RoundComplete(0)));

  // Survivors reconstruct the dropped key from a threshold of shares.
  auto scheme =
      crypto::ShamirSecretSharing::Create(kThreshold, kOwners).value();
  auto shares =
      scheme.Split(owners_[kDropped]->private_key().ToBytes(), &rng_);
  Bytes key_bytes =
      scheme.Reconstruct({shares[0], shares[1], shares[3]}, 32).value();
  crypto::UInt256 genuine = crypto::UInt256::FromBytes(key_bytes).value();

  // A forged key fails the contract's g^x == pub check.
  auto forged = Recover(0, crypto::UInt256(777), 50);
  EXPECT_FALSE(forged.success);
  EXPECT_FALSE(state_.Has(keys::RoundComplete(0)));

  // The genuine key completes the round over the survivors.
  auto receipt = Recover(0, genuine, 51);
  EXPECT_TRUE(receipt.success) << receipt.error;
  EXPECT_TRUE(state_.Has(keys::RoundComplete(0)));
  EXPECT_TRUE(state_.Has(keys::Retired(kDropped)));
  auto sv = GetDouble(state_, keys::RoundSv(0, kDropped));
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*sv, 0.0);
}

TEST_F(RecoverContractTest, SecondRecoveryOfRetiredOwnerIsRejected) {
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == kDropped) continue;
    ASSERT_TRUE(SubmitOwner(i, 0, i + 1));
  }
  auto scheme =
      crypto::ShamirSecretSharing::Create(kThreshold, kOwners).value();
  auto shares =
      scheme.Split(owners_[kDropped]->private_key().ToBytes(), &rng_);
  Bytes key_bytes =
      scheme.Reconstruct({shares[0], shares[1], shares[3]}, 32).value();
  crypto::UInt256 genuine = crypto::UInt256::FromBytes(key_bytes).value();
  ASSERT_TRUE(Recover(0, genuine, 50).success);

  // Replaying the recovery — same or later round — is rejected.
  EXPECT_FALSE(Recover(0, genuine, 51).success);
  EXPECT_FALSE(Recover(1, genuine, 52).success);
}

TEST_F(RecoverContractTest, RetiredOwnerCannotSubmitInLaterRounds) {
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == kDropped) continue;
    ASSERT_TRUE(SubmitOwner(i, 0, i + 1));
  }
  auto scheme =
      crypto::ShamirSecretSharing::Create(kThreshold, kOwners).value();
  auto shares =
      scheme.Split(owners_[kDropped]->private_key().ToBytes(), &rng_);
  Bytes key_bytes =
      scheme.Reconstruct({shares[0], shares[1], shares[3]}, 32).value();
  ASSERT_TRUE(
      Recover(0, crypto::UInt256::FromBytes(key_bytes).value(), 50)
          .success);

  // Round 1: the revealed key is public, so owner 2's masks offer no
  // privacy — the contract refuses its submissions permanently, and the
  // round completes from the survivors plus the standing retirement.
  EXPECT_FALSE(SubmitOwner(kDropped, 1, 60));
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == kDropped) continue;
    ASSERT_TRUE(SubmitOwner(i, 1, 70 + i));
  }
  EXPECT_TRUE(state_.Has(keys::RoundComplete(1)));
  auto sv = GetDouble(state_, keys::RoundSv(1, kDropped));
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*sv, 0.0);
}

}  // namespace
}  // namespace bcfl::core
