#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <numeric>

namespace bcfl::ml {
namespace {

Dataset MakeDataset(size_t n, size_t features, int classes, uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix x = Matrix::Gaussian(n, features, 1.0, &rng);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % static_cast<size_t>(classes));
  }
  return Dataset(std::move(x), std::move(y), classes);
}

TEST(DatasetTest, ValidateAcceptsConsistentData) {
  Dataset d = MakeDataset(20, 4, 3, 1);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_examples(), 20u);
  EXPECT_EQ(d.num_features(), 4u);
  EXPECT_EQ(d.num_classes(), 3);
}

TEST(DatasetTest, ValidateRejectsLabelOutOfRange) {
  Matrix x(2, 2);
  Dataset bad(x, {0, 5}, 3);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  Dataset negative(x, {0, -1}, 3);
  EXPECT_TRUE(negative.Validate().IsInvalidArgument());
}

TEST(DatasetTest, ValidateRejectsRowMismatch) {
  Matrix x(3, 2);
  Dataset bad(x, {0, 1}, 2);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(DatasetTest, SubsetCopiesSelectedRows) {
  Dataset d = MakeDataset(10, 3, 2, 2);
  auto sub = d.Subset({7, 2, 9});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_examples(), 3u);
  EXPECT_EQ(sub->labels()[0], d.labels()[7]);
  EXPECT_EQ(sub->labels()[1], d.labels()[2]);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(sub->features().At(0, j), d.features().At(7, j));
  }
}

TEST(DatasetTest, SubsetRejectsOutOfRange) {
  Dataset d = MakeDataset(5, 2, 2, 3);
  EXPECT_TRUE(d.Subset({5}).status().IsOutOfRange());
}

TEST(DatasetTest, TrainTestSplitPartitionsExactly) {
  Dataset d = MakeDataset(100, 3, 4, 4);
  Xoshiro256 rng(11);
  auto split = d.TrainTestSplit(0.8, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->first.num_examples(), 80u);
  EXPECT_EQ(split->second.num_examples(), 20u);
}

TEST(DatasetTest, TrainTestSplitRejectsDegenerateFractions) {
  Dataset d = MakeDataset(10, 2, 2, 5);
  Xoshiro256 rng(1);
  EXPECT_FALSE(d.TrainTestSplit(0.0, &rng).ok());
  EXPECT_FALSE(d.TrainTestSplit(1.0, &rng).ok());
  EXPECT_FALSE(d.TrainTestSplit(-0.5, &rng).ok());
}

TEST(DatasetTest, SplitIsDeterministicGivenSeed) {
  Dataset d = MakeDataset(50, 2, 2, 6);
  Xoshiro256 rng1(3), rng2(3);
  auto s1 = d.TrainTestSplit(0.5, &rng1);
  auto s2 = d.TrainTestSplit(0.5, &rng2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->first.labels(), s2->first.labels());
}

TEST(DatasetTest, OneHotLabels) {
  Matrix x(3, 1);
  Dataset d(x, {0, 2, 1}, 3);
  Matrix oh = d.OneHotLabels();
  EXPECT_EQ(oh.rows(), 3u);
  EXPECT_EQ(oh.cols(), 3u);
  EXPECT_EQ(oh.At(0, 0), 1.0);
  EXPECT_EQ(oh.At(1, 2), 1.0);
  EXPECT_EQ(oh.At(2, 1), 1.0);
  double total = 0;
  for (double v : oh.data()) total += v;
  EXPECT_EQ(total, 3.0);
}

TEST(DatasetTest, ClassCounts) {
  Matrix x(5, 1);
  Dataset d(x, {0, 0, 1, 2, 2}, 3);
  auto counts = d.ClassCounts();
  EXPECT_EQ(counts, (std::vector<size_t>{2, 1, 2}));
}

TEST(DatasetTest, ConcatenatePreservesOrderAndSchema) {
  Dataset a = MakeDataset(4, 3, 2, 7);
  Dataset b = MakeDataset(6, 3, 2, 8);
  auto merged = Dataset::Concatenate({a, b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_examples(), 10u);
  EXPECT_EQ(merged->labels()[0], a.labels()[0]);
  EXPECT_EQ(merged->labels()[4], b.labels()[0]);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(merged->features().At(4, j), b.features().At(0, j));
  }
}

TEST(DatasetTest, ConcatenateRejectsSchemaMismatch) {
  Dataset a = MakeDataset(4, 3, 2, 9);
  Dataset b = MakeDataset(4, 2, 2, 9);
  EXPECT_TRUE(Dataset::Concatenate({a, b}).status().IsInvalidArgument());
  Dataset c = MakeDataset(4, 3, 5, 9);
  EXPECT_TRUE(Dataset::Concatenate({a, c}).status().IsInvalidArgument());
  EXPECT_TRUE(
      Dataset::Concatenate(std::vector<Dataset>{}).status().IsInvalidArgument());
  EXPECT_TRUE(Dataset::Concatenate(std::vector<const Dataset*>{})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace bcfl::ml
