#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace bcfl {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64Test, KnownFirstOutput) {
  // Reference value for seed 0 from the public-domain SplitMix64 code.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.Next(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64Test, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(XoshiroTest, DeterministicForSameSeed) {
  Xoshiro256 a(55), b(55);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, DoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(XoshiroTest, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(13);
  const int kN = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(XoshiroTest, GaussianScalesAndShifts) {
  Xoshiro256 rng(17);
  const int kN = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

class PermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationTest, IsValidPermutation) {
  Xoshiro256 rng(GetParam());
  for (size_t n : {0u, 1u, 2u, 9u, 100u}) {
    std::vector<size_t> perm = rng.Permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::set<size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), n);
    if (n > 0) {
      EXPECT_EQ(*seen.begin(), 0u);
      EXPECT_EQ(*seen.rbegin(), n - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationTest,
                         ::testing::Values(0, 1, 42, 1234567, 0xffffffffULL));

TEST(PermutationTest, ShufflesUniformlyEnough) {
  // Over many 3-element permutations each of the 6 orders should appear
  // with roughly equal frequency.
  Xoshiro256 rng(21);
  std::map<std::vector<size_t>, int> counts;
  const int kN = 60000;
  for (int i = 0; i < kN; ++i) counts[rng.Permutation(3)]++;
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kN, 1.0 / 6.0, 0.01);
  }
}

TEST(ShuffleTest, EmptyAndSingleAreNoops) {
  Xoshiro256 rng(3);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(BoundedTest, CoversFullRange) {
  Xoshiro256 rng(31);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace bcfl
