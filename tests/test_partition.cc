#include "data/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "data/digits.h"

namespace bcfl::data {
namespace {

ml::Dataset SmallDigits(size_t n, uint64_t seed = 1) {
  DigitsConfig config;
  config.num_instances = n;
  config.seed = seed;
  return DigitsGenerator(config).Generate();
}

TEST(PartitionUniformTest, SizesDifferByAtMostOne) {
  ml::Dataset d = SmallDigits(100);
  Xoshiro256 rng(1);
  auto parts = PartitionUniform(d, 9, &rng);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 9u);
  size_t total = 0, min_size = SIZE_MAX, max_size = 0;
  for (const auto& part : *parts) {
    total += part.num_examples();
    min_size = std::min(min_size, part.num_examples());
    max_size = std::max(max_size, part.num_examples());
  }
  EXPECT_EQ(total, 100u);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(PartitionUniformTest, PartsAreDisjointAndCover) {
  // Tag each example with a unique feature value to track coverage.
  ml::Matrix x(30, 1);
  std::vector<int> y(30, 0);
  for (size_t i = 0; i < 30; ++i) x.At(i, 0) = static_cast<double>(i);
  ml::Dataset d(std::move(x), std::move(y), 2);

  Xoshiro256 rng(2);
  auto parts = PartitionUniform(d, 4, &rng);
  ASSERT_TRUE(parts.ok());
  std::multiset<double> seen;
  for (const auto& part : *parts) {
    for (size_t i = 0; i < part.num_examples(); ++i) {
      seen.insert(part.features().At(i, 0));
    }
  }
  ASSERT_EQ(seen.size(), 30u);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(seen.count(static_cast<double>(i)), 1u);
  }
}

TEST(PartitionUniformTest, RejectsDegenerateCounts) {
  ml::Dataset d = SmallDigits(10);
  Xoshiro256 rng(3);
  EXPECT_FALSE(PartitionUniform(d, 0, &rng).ok());
  EXPECT_FALSE(PartitionUniform(d, 11, &rng).ok());
}

TEST(PartitionWeightedTest, ApproximatesFractions) {
  ml::Dataset d = SmallDigits(1000);
  Xoshiro256 rng(4);
  auto parts = PartitionWeighted(d, {0.5, 0.3, 0.2}, &rng);
  ASSERT_TRUE(parts.ok());
  EXPECT_NEAR(static_cast<double>((*parts)[0].num_examples()), 500, 2);
  EXPECT_NEAR(static_cast<double>((*parts)[1].num_examples()), 300, 2);
  EXPECT_NEAR(static_cast<double>((*parts)[2].num_examples()), 200, 2);
}

TEST(PartitionWeightedTest, RejectsBadFractions) {
  ml::Dataset d = SmallDigits(50);
  Xoshiro256 rng(5);
  EXPECT_FALSE(PartitionWeighted(d, {}, &rng).ok());
  EXPECT_FALSE(PartitionWeighted(d, {0.5, 0.6}, &rng).ok());
  EXPECT_FALSE(PartitionWeighted(d, {1.5, -0.5}, &rng).ok());
}

TEST(PartitionLabelSkewTest, ZeroSkewBehavesUniform) {
  ml::Dataset d = SmallDigits(900);
  Xoshiro256 rng(6);
  auto parts = PartitionLabelSkew(d, 3, 0.0, &rng);
  ASSERT_TRUE(parts.ok());
  // Every part should contain most classes.
  for (const auto& part : *parts) {
    auto counts = part.ClassCounts();
    int present = 0;
    for (size_t c : counts) present += c > 0 ? 1 : 0;
    EXPECT_GE(present, 8);
  }
}

TEST(PartitionLabelSkewTest, HighSkewConcentratesPreferredClasses) {
  ml::Dataset d = SmallDigits(2000);
  Xoshiro256 rng(7);
  auto parts = PartitionLabelSkew(d, 10, 0.95, &rng);
  ASSERT_TRUE(parts.ok());
  // Part p prefers class p; it must hold a large majority of that class.
  for (size_t p = 0; p < 10; ++p) {
    auto counts = (*parts)[p].ClassCounts();
    size_t preferred = counts[p];
    size_t total = 0;
    for (size_t c : counts) total += c;
    EXPECT_GT(static_cast<double>(preferred) / static_cast<double>(total),
              0.5)
        << "part " << p;
  }
}

TEST(PartitionLabelSkewTest, RejectsBadSkew) {
  ml::Dataset d = SmallDigits(100);
  Xoshiro256 rng(8);
  EXPECT_FALSE(PartitionLabelSkew(d, 3, -0.1, &rng).ok());
  EXPECT_FALSE(PartitionLabelSkew(d, 3, 1.1, &rng).ok());
  EXPECT_FALSE(PartitionLabelSkew(d, 0, 0.5, &rng).ok());
}

TEST(PartitionTest, DeterministicGivenSeed) {
  ml::Dataset d = SmallDigits(200);
  Xoshiro256 rng1(9), rng2(9);
  auto p1 = PartitionUniform(d, 5, &rng1);
  auto p2 = PartitionUniform(d, 5, &rng2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*p1)[i].labels(), (*p2)[i].labels());
  }
}

}  // namespace
}  // namespace bcfl::data
