// Cross-module edge cases collected from review: degenerate moduli,
// multi-dropout recovery, self-messaging, grouping distribution over
// rounds, and contract-state isolation under failed transactions.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "crypto/uint256.h"
#include "net/network.h"
#include "secureagg/session.h"
#include "shapley/group_sv.h"

namespace bcfl {
namespace {

// --- UInt256 degenerate moduli ----------------------------------------

TEST(UInt256EdgeTest, ModulusOne) {
  crypto::UInt256 m(1);
  EXPECT_TRUE(crypto::UInt256(12345).Mod(m).IsZero());
  EXPECT_TRUE(crypto::UInt256(7).ModMul(crypto::UInt256(9), m).IsZero());
  // x^e mod 1 == 0 for all x, e.
  EXPECT_TRUE(
      crypto::UInt256(2).ModPow(crypto::UInt256(100), m).IsZero());
}

TEST(UInt256EdgeTest, MaximumModulus) {
  crypto::UInt256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  crypto::UInt256 a(~0ULL, ~0ULL, ~0ULL, 0);
  EXPECT_EQ(a.Mod(max), a);  // a < max stays put.
  EXPECT_TRUE(max.Mod(max).IsZero());
  // (max-1) * (max-1) mod max == 1  (since max-1 == -1 mod max).
  crypto::UInt256 minus_one = max.Sub(crypto::UInt256(1));
  EXPECT_EQ(minus_one.ModMul(minus_one, max), crypto::UInt256(1));
}

TEST(UInt256EdgeTest, PowZeroBaseAndExponent) {
  crypto::UInt256 m(97);
  EXPECT_EQ(crypto::UInt256(0).ModPow(crypto::UInt256(5), m),
            crypto::UInt256(0));
  EXPECT_EQ(crypto::UInt256(0).ModPow(crypto::UInt256(0), m),
            crypto::UInt256(1));  // Convention 0^0 = 1.
}

// --- Secure aggregation: two simultaneous dropouts ---------------------

TEST(SecureAggEdgeTest, TwoDropoutsRecoverTogether) {
  secureagg::SessionConfig config;
  config.use_self_masks = true;
  config.threshold = 3;
  auto session = secureagg::SecureAggSession::Create(6, config).value();
  Xoshiro256 rng(5);

  std::vector<secureagg::OwnerId> group = {0, 1, 2, 3, 4, 5};
  std::vector<std::vector<double>> updates(6, std::vector<double>(12));
  for (auto& u : updates) {
    for (auto& v : u) v = rng.NextGaussian(0.0, 1.0);
  }
  std::map<secureagg::OwnerId, std::vector<uint64_t>> submissions;
  for (secureagg::OwnerId id : {0u, 2u, 3u, 5u}) {  // 1 and 4 drop.
    submissions[id] = session.Submit(id, 0, group, updates[id]).value();
  }
  auto mean = session.AggregateGroupMean(0, group, submissions, {1, 4});
  ASSERT_TRUE(mean.ok());
  for (size_t k = 0; k < 12; ++k) {
    double expected =
        (updates[0][k] + updates[2][k] + updates[3][k] + updates[5][k]) / 4;
    EXPECT_NEAR((*mean)[k], expected, 1e-5) << "element " << k;
  }
}

TEST(SecureAggEdgeTest, RecoveryRespectsTheShareThreshold) {
  // 3 of 4 owners drop, leaving a single share-holder online.
  // With threshold 2 the protocol must REFUSE to reconstruct (not
  // enough revealable shares); with threshold 1 the lone survivor can
  // finish the round alone.
  Xoshiro256 rng(6);
  std::vector<secureagg::OwnerId> group = {0, 1, 2, 3};
  std::vector<double> update(8);
  for (auto& v : update) v = rng.NextGaussian(0.0, 1.0);

  {
    secureagg::SessionConfig config;
    config.use_self_masks = true;
    config.threshold = 2;
    auto session = secureagg::SecureAggSession::Create(4, config).value();
    std::map<secureagg::OwnerId, std::vector<uint64_t>> submissions;
    submissions[2] = session.Submit(2, 0, group, update).value();
    auto mean =
        session.AggregateGroupMean(0, group, submissions, {0, 1, 3});
    EXPECT_FALSE(mean.ok());  // One holder < threshold of two.
  }
  {
    secureagg::SessionConfig config;
    config.use_self_masks = true;
    config.threshold = 1;
    auto session = secureagg::SecureAggSession::Create(4, config).value();
    std::map<secureagg::OwnerId, std::vector<uint64_t>> submissions;
    submissions[2] = session.Submit(2, 0, group, update).value();
    auto mean =
        session.AggregateGroupMean(0, group, submissions, {0, 1, 3});
    ASSERT_TRUE(mean.ok());
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_NEAR((*mean)[k], update[k], 1e-5);
    }
  }
}

// --- Network: self-send and idempotent drain ---------------------------

TEST(NetworkEdgeTest, SelfSendIsDelivered) {
  net::SimulatedNetwork network;
  int received = 0;
  ASSERT_TRUE(
      network.RegisterNode(1, [&](const net::Message&) { received++; })
          .ok());
  ASSERT_TRUE(network.Send(1, 1, {1}).ok());
  network.DeliverAll();
  EXPECT_EQ(received, 1);
}

TEST(NetworkEdgeTest, DrainOnEmptyQueueIsZero) {
  net::SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(0, [](const net::Message&) {}).ok());
  EXPECT_EQ(network.DeliverAll(), 0u);
  EXPECT_EQ(network.DeliverAll(), 0u);
}

// --- Grouping distribution over rounds ---------------------------------

TEST(GroupingEdgeTest, RoundsMixGroupCompositions) {
  // Over many rounds each pair of users should share a group sometimes
  // but not always — the re-randomisation GroupSV relies on to separate
  // individual contributions within groups.
  const size_t n = 9, m = 3, rounds = 60;
  std::map<std::pair<size_t, size_t>, size_t> together;
  for (uint64_t r = 0; r < rounds; ++r) {
    auto perm = shapley::PermutationFromSeed(42, r, n);
    auto groups = shapley::GroupUsers(perm, m).value();
    for (const auto& group : groups) {
      for (size_t a : group) {
        for (size_t b : group) {
          if (a < b) together[{a, b}]++;
        }
      }
    }
  }
  // Expected co-occurrence probability for a fixed pair: 2/8 = 0.25
  // (both in the same 3-slot group of 9). Loose bounds.
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      size_t count = together[{a, b}];
      EXPECT_GT(count, rounds / 20) << a << "," << b;
      EXPECT_LT(count, rounds / 2) << a << "," << b;
    }
  }
}

TEST(GroupingEdgeTest, SingleUserSingleGroup) {
  auto perm = shapley::PermutationFromSeed(1, 0, 1);
  auto groups = shapley::GroupUsers(perm, 1);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0], std::vector<size_t>{0});
}

}  // namespace
}  // namespace bcfl
