#include <gtest/gtest.h>

#include "chain/block.h"
#include "chain/mempool.h"
#include "chain/transaction.h"

namespace bcfl::chain {
namespace {

class TxFixture : public ::testing::Test {
 protected:
  crypto::Schnorr scheme_;
  Xoshiro256 rng_{1};
  crypto::SchnorrKeyPair key_ = scheme_.GenerateKeyPair(&rng_);

  Transaction MakeTx(const std::string& method = "submit_update",
                     uint64_t nonce = 1) {
    Transaction tx;
    tx.contract = "bcfl";
    tx.method = method;
    tx.payload = {1, 2, 3, 4};
    tx.nonce = nonce;
    tx.Sign(scheme_, key_, &rng_);
    return tx;
  }
};

TEST_F(TxFixture, SignSetsSenderAndVerifies) {
  Transaction tx = MakeTx();
  EXPECT_EQ(tx.sender, key_.public_key);
  EXPECT_TRUE(tx.VerifySignature(scheme_));
}

TEST_F(TxFixture, TamperedFieldsBreakSignature) {
  Transaction tx = MakeTx();
  Transaction t1 = tx;
  t1.method = "setup";
  EXPECT_FALSE(t1.VerifySignature(scheme_));
  Transaction t2 = tx;
  t2.payload.push_back(0);
  EXPECT_FALSE(t2.VerifySignature(scheme_));
  Transaction t3 = tx;
  t3.nonce++;
  EXPECT_FALSE(t3.VerifySignature(scheme_));
  Transaction t4 = tx;
  t4.contract = "other";
  EXPECT_FALSE(t4.VerifySignature(scheme_));
}

TEST_F(TxFixture, SerializeRoundTrip) {
  Transaction tx = MakeTx();
  auto back = Transaction::Deserialize(tx.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->contract, tx.contract);
  EXPECT_EQ(back->method, tx.method);
  EXPECT_EQ(back->payload, tx.payload);
  EXPECT_EQ(back->sender, tx.sender);
  EXPECT_EQ(back->nonce, tx.nonce);
  EXPECT_EQ(back->Hash(), tx.Hash());
  EXPECT_TRUE(back->VerifySignature(scheme_));
}

TEST_F(TxFixture, DeserializeRejectsTrailingBytes) {
  Bytes wire = MakeTx().Serialize();
  wire.push_back(0);
  EXPECT_TRUE(Transaction::Deserialize(wire).status().IsCorruption());
}

TEST_F(TxFixture, DeserializeRejectsTruncation) {
  Bytes wire = MakeTx().Serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(Transaction::Deserialize(wire).ok());
}

TEST_F(TxFixture, HashDistinguishesTransactions) {
  EXPECT_NE(MakeTx("a", 1).Hash(), MakeTx("b", 1).Hash());
  EXPECT_NE(MakeTx("a", 1).Hash(), MakeTx("a", 2).Hash());
}

TEST_F(TxFixture, BlockMerkleRootCommitsToBody) {
  Block block;
  block.txs = {MakeTx("m", 1), MakeTx("m", 2)};
  block.header.merkle_root = block.ComputeMerkleRoot();
  EXPECT_TRUE(block.MerkleRootMatchesBody());
  block.txs[0].nonce = 999;
  EXPECT_FALSE(block.MerkleRootMatchesBody());
}

TEST_F(TxFixture, BlockSerializeRoundTrip) {
  Block block;
  block.header.height = 3;
  block.header.prev_hash.fill(0xaa);
  block.header.state_root.fill(0xbb);
  block.header.timestamp_us = 123456;
  block.header.proposer = 2;
  block.txs = {MakeTx("m", 1), MakeTx("m", 2), MakeTx("m", 3)};
  block.header.merkle_root = block.ComputeMerkleRoot();

  auto back = Block::Deserialize(block.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header.Hash(), block.header.Hash());
  ASSERT_EQ(back->txs.size(), 3u);
  EXPECT_EQ(back->txs[1].Hash(), block.txs[1].Hash());
  EXPECT_TRUE(back->MerkleRootMatchesBody());
}

TEST_F(TxFixture, BlockDeserializeRejectsGarbage) {
  EXPECT_FALSE(Block::Deserialize(Bytes{1, 2, 3}).ok());
  Bytes wire = Block().Serialize();
  wire.push_back(7);
  EXPECT_TRUE(Block::Deserialize(wire).status().IsCorruption());
}

TEST_F(TxFixture, MempoolRejectsReSignedSenderNonceReplay) {
  Mempool pool;
  Transaction tx = MakeTx("submit_update", 7);
  ASSERT_TRUE(pool.Add(tx).ok());
  // Re-sign the same logical transaction: the fresh Schnorr nonce gives
  // it a different hash, but it targets the same (sender, nonce) slot —
  // admission must reject it, not let it occupy a second block slot.
  Transaction replay = tx;
  replay.Sign(scheme_, key_, &rng_);
  ASSERT_NE(replay.Hash(), tx.Hash());
  EXPECT_TRUE(pool.Add(replay).IsAlreadyExists());
  EXPECT_EQ(pool.size(), 1u);
  // A different nonce from the same sender is still admissible.
  EXPECT_TRUE(pool.Add(MakeTx("submit_update", 8)).ok());
  EXPECT_EQ(pool.size(), 2u);
}

TEST_F(TxFixture, MempoolPendingRootTracksBatchRebuild) {
  Mempool pool;
  crypto::Digest zero;
  zero.fill(0);
  EXPECT_EQ(pool.PendingRoot(), zero);
  std::vector<Transaction> txs;
  for (uint64_t n = 0; n < 5; ++n) {
    txs.push_back(MakeTx("submit_update", n));
    ASSERT_TRUE(pool.Add(txs.back()).ok());
    // The incrementally appended root must equal the root a block over
    // the full pending list would compute from scratch.
    Block block;
    block.txs = pool.Peek(0);
    EXPECT_EQ(pool.PendingRoot(), block.ComputeMerkleRoot())
        << "after " << (n + 1) << " adds";
  }
  // Eviction falls back to a rebuild; the root must stay consistent.
  pool.RemoveCommitted({txs[0], txs[1]});
  Block rest;
  rest.txs = pool.Peek(0);
  EXPECT_EQ(pool.PendingRoot(), rest.ComputeMerkleRoot());
}

TEST(BlockHeaderTest, HashCoversEveryField) {
  BlockHeader base;
  base.height = 1;
  auto hash = [](BlockHeader h) { return h.Hash(); };
  BlockHeader h1 = base;
  h1.height = 2;
  EXPECT_NE(hash(h1), hash(base));
  BlockHeader h2 = base;
  h2.prev_hash[0] = 1;
  EXPECT_NE(hash(h2), hash(base));
  BlockHeader h3 = base;
  h3.merkle_root[0] = 1;
  EXPECT_NE(hash(h3), hash(base));
  BlockHeader h4 = base;
  h4.state_root[0] = 1;
  EXPECT_NE(hash(h4), hash(base));
  BlockHeader h5 = base;
  h5.timestamp_us = 9;
  EXPECT_NE(hash(h5), hash(base));
  BlockHeader h6 = base;
  h6.proposer = 9;
  EXPECT_NE(hash(h6), hash(base));
}

TEST(GenesisTest, IsDeterministic) {
  Block g1 = MakeGenesisBlock();
  Block g2 = MakeGenesisBlock();
  EXPECT_EQ(g1.header.Hash(), g2.header.Hash());
  EXPECT_EQ(g1.header.height, 0u);
  EXPECT_TRUE(g1.txs.empty());
  EXPECT_TRUE(g1.MerkleRootMatchesBody());
}

}  // namespace
}  // namespace bcfl::chain
