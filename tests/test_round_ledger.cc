#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/coordinator.h"
#include "fault/fault_plan.h"
#include "obs/json_reader.h"
#include "obs/round_ledger.h"

namespace bcfl::obs {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(RollingSvVolatilityTest, SampleStddevOverTrailingWindow) {
  const std::vector<std::vector<double>> history = {
      {1.0, 2.0}, {3.0, 2.0}, {5.0, 2.0}};
  // Window 2: owner 0 sees {3, 5} -> sample stddev sqrt(2); owner 1 is
  // perfectly stable.
  std::vector<double> v = RollingSvVolatility(history, 2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  // Window larger than the history uses everything: {1, 3, 5} -> 2.
  v = RollingSvVolatility(history, 10);
  EXPECT_DOUBLE_EQ(v[0], 2.0);
  // Window 0 means "all".
  EXPECT_DOUBLE_EQ(RollingSvVolatility(history, 0)[0], 2.0);
}

TEST(RollingSvVolatilityTest, WarmupAndEmptyEdges) {
  EXPECT_TRUE(RollingSvVolatility({}, 5).empty());
  const std::vector<std::vector<double>> one = {{0.4, 0.6}};
  std::vector<double> v = RollingSvVolatility(one, 5);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(RoundLedgerTest, AppendRequiresOpen) {
  RoundLedger ledger;
  RoundRecord record;
  EXPECT_FALSE(ledger.Append(record).ok());
}

TEST(RoundLedgerTest, AppendsParseableRecordsWithVolatility) {
  const std::string path = TempPath("ledger_unit.jsonl");
  RoundLedger ledger(/*volatility_window=*/3);
  ASSERT_TRUE(ledger.Open(path).ok());

  for (uint64_t r = 0; r < 3; ++r) {
    RoundRecord record;
    record.round = r;
    record.phase_us["train"] = 100.0 + static_cast<double>(r);
    record.phase_us["consensus"] = 50.0;
    record.sig_cache_hit_rate = 0.75;
    record.sig_cache_lookups = 16;
    record.sv = {0.1 * static_cast<double>(r + 1), 0.2};
    record.accuracy = 0.9;
    record.blocks_committed = 1;
    record.transactions = 4;
    if (r == 1) {
      record.fault_events = {"round 1: crash owner 0"};
      record.dropouts = {0};
      record.recovered = {0};
    }
    ASSERT_TRUE(ledger.Append(record).ok());
  }
  EXPECT_EQ(ledger.rounds_written(), 3u);
  ASSERT_EQ(ledger.last_volatility().size(), 2u);
  // Owner 0 scored {0.1, 0.2, 0.3}: sample stddev 0.1.
  EXPECT_NEAR(ledger.last_volatility()[0], 0.1, 1e-12);
  EXPECT_NEAR(ledger.last_volatility()[1], 0.0, 1e-12);
  ledger.Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (size_t i = 0; i < lines.size(); ++i) {
    auto parsed = ParseJson(lines[i]);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_DOUBLE_EQ(parsed->Find("round")->number,
                     static_cast<double>(i));
    EXPECT_DOUBLE_EQ(parsed->Find("phase_us")->Find("train")->number,
                     100.0 + static_cast<double>(i));
    EXPECT_DOUBLE_EQ(parsed->Find("sig_cache_hit_rate")->number, 0.75);
    ASSERT_EQ(parsed->Find("sv")->array.size(), 2u);
    ASSERT_EQ(parsed->Find("sv_volatility")->array.size(), 2u);
    EXPECT_TRUE(parsed->Find("sv_volatility_mean")->is_number());
  }
  auto second = ParseJson(lines[1]);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->Find("fault_events")->array.size(), 1u);
  EXPECT_EQ(second->Find("fault_events")->array[0].string,
            "round 1: crash owner 0");
  EXPECT_DOUBLE_EQ(second->Find("dropouts")->array[0].number, 0.0);
  EXPECT_DOUBLE_EQ(second->Find("recovered")->array[0].number, 0.0);
}

// End-to-end acceptance: a faulted session with a reward pool must emit
// exactly one record per FL round, with the dropout, its fault events
// and the recovery on the right round, per-phase latencies filled in,
// and the reward phase folded into the final round's record.
TEST(RoundLedgerCoordinatorTest, OneRecordPerRoundWithFaultsAndReward) {
  const std::string path = TempPath("ledger_e2e.jsonl");
  RoundLedger ledger;
  ASSERT_TRUE(ledger.Open(path).ok());

  core::BcflConfig config;
  config.num_owners = 5;
  config.num_miners = 3;
  config.rounds = 3;
  config.num_groups = 2;
  config.digits.num_instances = 400;
  config.reward_pool = 50000;
  auto plan = fault::FaultPlan::Parse("crash owner 1 @1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = *plan;

  auto coordinator = core::BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  (*coordinator)->set_round_ledger(&ledger);
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ledger.Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);  // One record per round, reward included.

  for (size_t r = 0; r < lines.size(); ++r) {
    auto parsed = ParseJson(lines[r]);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_DOUBLE_EQ(parsed->Find("round")->number, static_cast<double>(r));
    const JsonValue* phases = parsed->Find("phase_us");
    ASSERT_NE(phases, nullptr);
    for (const char* phase : {"train", "tx_admission", "consensus",
                              "secureagg_mask", "sv_eval"}) {
      const JsonValue* us = phases->Find(phase);
      ASSERT_NE(us, nullptr) << "missing phase " << phase << " in round "
                             << r;
      EXPECT_GE(us->number, 0.0);
    }
    EXPECT_EQ(parsed->Find("sv")->array.size(), 5u);
    EXPECT_EQ(parsed->Find("sv_volatility")->array.size(), 5u);
    EXPECT_GT(parsed->Find("accuracy")->number, 0.0);
    EXPECT_GT(parsed->Find("blocks_committed")->number, 0.0);
    EXPECT_GT(parsed->Find("transactions")->number, 0.0);
    EXPECT_GT(parsed->Find("sig_cache_lookups")->number, 0.0);
  }

  // Round 1 carries the injected dropout end to end.
  auto faulted = ParseJson(lines[1]);
  ASSERT_TRUE(faulted.ok());
  ASSERT_EQ(faulted->Find("dropouts")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(faulted->Find("dropouts")->array[0].number, 1.0);
  ASSERT_EQ(faulted->Find("recovered")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(faulted->Find("recovered")->array[0].number, 1.0);
  EXPECT_FALSE(faulted->Find("fault_events")->array.empty());
  ASSERT_NE(faulted->Find("phase_us")->Find("secureagg_recover"), nullptr);
  // The retired owner scores 0 from the dropout round on.
  EXPECT_DOUBLE_EQ(faulted->Find("sv")->array[1].number, 0.0);

  // Fault-free rounds carry no fault fields...
  auto clean = ParseJson(lines[0]);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->Find("dropouts")->array.empty());
  EXPECT_EQ(clean->Find("phase_us")->Find("secureagg_recover"), nullptr);
  EXPECT_EQ(clean->Find("phase_us")->Find("reward"), nullptr);

  // ...and the final round absorbs the on-chain reward phase.
  auto last = ParseJson(lines[2]);
  ASSERT_TRUE(last.ok());
  const JsonValue* reward_us = last->Find("phase_us")->Find("reward");
  ASSERT_NE(reward_us, nullptr);
  EXPECT_GT(reward_us->number, 0.0);
  // SV volatility is live by round 2 (three samples of a noisy vector).
  EXPECT_GT(last->Find("sv_volatility_mean")->number, 0.0);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace bcfl::obs
