#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace bcfl::crypto {
namespace {

std::array<uint8_t, 32> TestKey() {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  return key;
}

// RFC 8439 section 2.3.2: key 00..1f, nonce 00 00 00 09 00 00 00 4a
// 00 00 00 00, counter 1 — first keystream block.
TEST(ChaCha20Test, Rfc8439BlockFunctionVector) {
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 cipher(TestKey(), nonce, /*counter=*/1);
  Bytes keystream = cipher.Keystream(64);
  EXPECT_EQ(ToHex(keystream),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 section 2.4.2: encrypting the sunscreen plaintext.
TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes data(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(TestKey(), nonce, /*counter=*/1);
  cipher.Crypt(data.data(), data.size());
  EXPECT_EQ(ToHex(Bytes(data.begin(), data.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  std::array<uint8_t, 12> nonce{};
  Bytes data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  Bytes original = data;
  ChaCha20 enc(TestKey(), nonce);
  enc.Crypt(data.data(), data.size());
  EXPECT_NE(data, original);
  ChaCha20 dec(TestKey(), nonce);
  dec.Crypt(data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(ChaCha20Test, KeystreamIsDeterministic) {
  std::array<uint8_t, 12> nonce{};
  ChaCha20 a(TestKey(), nonce), b(TestKey(), nonce);
  EXPECT_EQ(a.Keystream(100), b.Keystream(100));
}

TEST(ChaCha20Test, ChunkedKeystreamMatchesContiguous) {
  std::array<uint8_t, 12> nonce{};
  ChaCha20 contiguous(TestKey(), nonce);
  Bytes expected = contiguous.Keystream(200);
  ChaCha20 chunked(TestKey(), nonce);
  Bytes actual;
  for (size_t taken = 0; taken < 200;) {
    size_t take = std::min<size_t>(13, 200 - taken);
    Bytes part = chunked.Keystream(take);
    actual.insert(actual.end(), part.begin(), part.end());
    taken += take;
  }
  EXPECT_EQ(actual, expected);
}

// The batched block generator (FillBlocks / the whole-block fast path of
// Keystream) must be byte-for-byte the serial RFC 8439 stream across the
// drain / batch / tail boundaries, for every lane width the dispatcher
// might pick.
TEST(ChaCha20Test, FillBlocksMatchesSerialKeystream) {
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  for (size_t num_blocks : {size_t{1}, size_t{3}, size_t{4}, size_t{7},
                            size_t{8}, size_t{16}, size_t{37}}) {
    ChaCha20 serial(TestKey(), nonce, /*counter=*/1);
    Bytes expected;
    for (size_t i = 0; i < num_blocks * 64; ++i) {
      Bytes byte = serial.Keystream(1);
      expected.push_back(byte[0]);
    }
    ChaCha20 batched(TestKey(), nonce, /*counter=*/1);
    Bytes actual(num_blocks * 64);
    batched.FillBlocks(actual.data(), num_blocks);
    EXPECT_EQ(actual, expected) << num_blocks << " blocks";
  }
}

TEST(ChaCha20Test, FillBlocksAfterPartialDrainKeepsStreamPosition) {
  std::array<uint8_t, 12> nonce{};
  ChaCha20 serial(TestKey(), nonce);
  Bytes expected = serial.Keystream(13 + 5 * 64 + 21);

  ChaCha20 mixed(TestKey(), nonce);
  Bytes head = mixed.Keystream(13);  // Leaves a buffered partial block.
  Bytes blocks(5 * 64);
  mixed.FillBlocks(blocks.data(), 5);
  Bytes tail = mixed.Keystream(21);

  Bytes actual = head;
  actual.insert(actual.end(), blocks.begin(), blocks.end());
  actual.insert(actual.end(), tail.begin(), tail.end());
  EXPECT_EQ(actual, expected);
}

TEST(ChaCha20Test, DifferentNoncesDiverge) {
  std::array<uint8_t, 12> n1{}, n2{};
  n2[0] = 1;
  ChaCha20 a(TestKey(), n1), b(TestKey(), n2);
  EXPECT_NE(a.Keystream(64), b.Keystream(64));
}

TEST(ChaChaRngTest, DeterministicStreams) {
  ChaChaRng a(TestKey(), 5), b(TestKey(), 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(ChaChaRngTest, StreamIdsAreIndependent) {
  ChaChaRng a(TestKey(), 1), b(TestKey(), 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(ChaChaRngTest, DoublesInUnitInterval) {
  ChaChaRng rng(TestKey(), 9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace bcfl::crypto
