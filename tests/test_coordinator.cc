#include "core/coordinator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "chain/merkle.h"
#include "chain/storage.h"
#include "shapley/group_sv.h"
#include "shapley/utility.h"

namespace bcfl::core {
namespace {

BcflConfig SmallConfig() {
  BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 3;
  config.rounds = 2;
  config.num_groups = 2;
  config.seed = 21;
  config.seed_e = 5;
  config.sigma = 0.0;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 400;
  return config;
}

TEST(CoordinatorTest, CreateRejectsDegenerateConfigs) {
  BcflConfig config = SmallConfig();
  config.num_owners = 1;
  EXPECT_FALSE(BcflCoordinator::Create(config).ok());
  config = SmallConfig();
  config.num_miners = 0;
  EXPECT_FALSE(BcflCoordinator::Create(config).ok());
}

TEST(CoordinatorTest, EndToEndRunProducesConsistentResults) {
  BcflConfig config = SmallConfig();
  config.keep_local_models = true;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());

  // Shape checks.
  EXPECT_EQ(result->total_sv.size(), 4u);
  EXPECT_EQ(result->per_round_sv.size(), 2u);
  EXPECT_EQ(result->round_accuracies.size(), 2u);
  EXPECT_EQ(result->per_round_locals.size(), 2u);
  EXPECT_GT(result->blocks_committed, 0u);
  // Setup tx committed during Create is not counted; 8 update txs are.
  EXPECT_EQ(result->total_transactions, 8u);

  // On-chain totals equal the sum of per-round values.
  for (size_t i = 0; i < 4; ++i) {
    double sum = 0;
    for (const auto& round : result->per_round_sv) sum += round[i];
    EXPECT_NEAR(result->total_sv[i], sum, 1e-9);
  }

  // Two short rounds on 400 instances: the global model must already be
  // meaningfully better than the 0.1 chance level.
  EXPECT_GT(result->round_accuracies.back(), 0.18);
}

TEST(CoordinatorTest, OnChainGroupSvMatchesOffChainReference) {
  BcflConfig config = SmallConfig();
  config.keep_local_models = true;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());

  // Recompute GroupSV off chain from the recorded plain local weights.
  shapley::TestAccuracyUtility utility((*coordinator)->test_set());
  shapley::GroupShapley reference(4, {2, SmallConfig().seed_e}, &utility);
  for (uint64_t round = 0; round < 2; ++round) {
    auto expected =
        reference.EvaluateRound(round, result->per_round_locals[round]);
    ASSERT_TRUE(expected.ok());
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(result->per_round_sv[round][i], expected->user_values[i],
                  1e-3)
          << "round " << round << " owner " << i;
    }
  }
}

TEST(CoordinatorTest, LocalModelRetentionIsOptIn) {
  // keep_local_models defaults off: the per-round local weights are an
  // experiment-only retention that costs O(rounds * owners * model).
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->per_round_locals.empty());
}

TEST(CoordinatorTest, AllMinersConvergeToSameState) {
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  ASSERT_TRUE((*coordinator)->Run().ok());
  auto& engine = (*coordinator)->engine();
  auto root = engine.miner(0).state().StateRoot();
  for (size_t m = 1; m < engine.num_miners(); ++m) {
    EXPECT_EQ(engine.miner(m).state().StateRoot(), root);
  }
}

TEST(CoordinatorTest, DeterministicAcrossIdenticalRuns) {
  auto c1 = BcflCoordinator::Create(SmallConfig());
  auto c2 = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto r1 = (*c1)->Run();
  auto r2 = (*c2)->Run();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->total_sv, r2->total_sv);
  EXPECT_EQ(r1->global_weights, r2->global_weights);
}

TEST(CoordinatorTest, RewardPhaseDistributesOnChain) {
  BcflConfig config = SmallConfig();
  config.reward_pool = 1'000'000;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rewards.size(), 4u);
  uint64_t total = 0;
  for (uint64_t r : result->rewards) total += r;
  EXPECT_EQ(total, 1'000'000u);
  // The owner with the highest SV receives the largest reward.
  size_t best_sv = 0, best_reward = 0;
  for (size_t i = 1; i < 4; ++i) {
    if (result->total_sv[i] > result->total_sv[best_sv]) best_sv = i;
    if (result->rewards[i] > result->rewards[best_reward]) best_reward = i;
  }
  EXPECT_EQ(best_sv, best_reward);
}

TEST(CoordinatorTest, NoRewardPoolLeavesRewardsEmpty) {
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rewards.empty());
}

TEST(CoordinatorTest, CanonicalChainSurvivesDiskRoundTrip) {
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  ASSERT_TRUE((*coordinator)->Run().ok());
  const auto& chain = (*coordinator)->engine().CanonicalChain();

  std::string path =
      (std::filesystem::temp_directory_path() / "bcfl_coord_chain.bin")
          .string();
  ASSERT_TRUE(chain::SaveChain(chain, path).ok());
  auto loaded = chain::LoadChain(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Height(), chain.Height());
  EXPECT_EQ(loaded->Tip().header.Hash(), chain.Tip().header.Hash());
  EXPECT_EQ(loaded->TotalTransactions(), chain.TotalTransactions());
}

TEST(CoordinatorTest, CanonicalChainPassesFullAudit) {
  // An external auditor's view: walk the committed chain and verify
  // every structural claim — parent links, Merkle commitments, and an
  // inclusion proof plus signature for every transaction.
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  ASSERT_TRUE((*coordinator)->Run().ok());
  const auto& chain = (*coordinator)->engine().CanonicalChain();
  crypto::Schnorr schnorr;

  ASSERT_GT(chain.Height(), 0u);
  for (uint64_t h = 1; h <= chain.Height(); ++h) {
    auto parent = chain.GetBlock(h - 1);
    auto block = chain.GetBlock(h);
    ASSERT_TRUE(parent.ok());
    ASSERT_TRUE(block.ok());
    EXPECT_TRUE(chain::Blockchain::Validate(*block, *parent).ok())
        << "height " << h;

    std::vector<crypto::Digest> leaves;
    for (const auto& tx : block->txs) {
      EXPECT_TRUE(tx.VerifySignature(schnorr)) << "height " << h;
      leaves.push_back(tx.Hash());
    }
    chain::MerkleTree tree(leaves);
    EXPECT_EQ(tree.root(), block->header.merkle_root) << "height " << h;
    for (size_t t = 0; t < leaves.size(); ++t) {
      auto proof = tree.Proof(t);
      ASSERT_TRUE(proof.ok());
      EXPECT_TRUE(chain::MerkleTree::VerifyProof(leaves[t], *proof,
                                                 block->header.merkle_root))
          << "height " << h << " tx " << t;
    }
  }
}

TEST(CoordinatorTest, QualityGradientLowersNoisyOwnersSv) {
  BcflConfig config = SmallConfig();
  config.sigma = 4.0;
  config.rounds = 3;
  config.digits.num_instances = 800;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  // Owner 0 (clean) must beat owner 3 (noisiest) in accumulated SV.
  EXPECT_GT(result->total_sv[0], result->total_sv[3]);
}

}  // namespace
}  // namespace bcfl::core
