#include "data/digits.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace bcfl::data {
namespace {

TEST(DigitsTest, MatchesUciShape) {
  DigitsConfig config;  // Defaults mirror the UCI dataset.
  ml::Dataset d = DigitsGenerator(config).Generate();
  EXPECT_EQ(d.num_examples(), 5620u);
  EXPECT_EQ(d.num_features(), 64u);
  EXPECT_EQ(d.num_classes(), 10);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DigitsTest, ValuesInUciRange) {
  DigitsConfig config;
  config.num_instances = 500;
  ml::Dataset d = DigitsGenerator(config).Generate();
  for (double v : d.features().data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 16.0);
  }
}

TEST(DigitsTest, ClassesNearBalanced) {
  DigitsConfig config;
  config.num_instances = 1000;
  ml::Dataset d = DigitsGenerator(config).Generate();
  auto counts = d.ClassCounts();
  ASSERT_EQ(counts.size(), 10u);
  for (size_t c : counts) EXPECT_EQ(c, 100u);
}

TEST(DigitsTest, DeterministicForSameSeed) {
  DigitsConfig config;
  config.num_instances = 200;
  config.seed = 77;
  ml::Dataset a = DigitsGenerator(config).Generate();
  ml::Dataset b = DigitsGenerator(config).Generate();
  EXPECT_EQ(a.features(), b.features());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(DigitsTest, DifferentSeedsDiffer) {
  DigitsConfig c1, c2;
  c1.num_instances = c2.num_instances = 200;
  c1.seed = 1;
  c2.seed = 2;
  ml::Dataset a = DigitsGenerator(c1).Generate();
  ml::Dataset b = DigitsGenerator(c2).Generate();
  EXPECT_NE(a.features(), b.features());
}

TEST(DigitsTest, TemplatesAreDistinct) {
  for (int a = 0; a < 10; ++a) {
    auto ta = DigitsGenerator::Template(a);
    ASSERT_TRUE(ta.ok());
    ASSERT_EQ(ta->size(), 64u);
    for (int b = a + 1; b < 10; ++b) {
      auto tb = DigitsGenerator::Template(b);
      ASSERT_TRUE(tb.ok());
      // L2 distance between any two templates must be substantial.
      double dist = 0;
      for (size_t i = 0; i < 64; ++i) {
        double diff = (*ta)[i] - (*tb)[i];
        dist += diff * diff;
      }
      EXPECT_GT(std::sqrt(dist), 10.0) << "templates " << a << "," << b;
    }
  }
}

TEST(DigitsTest, TemplateRejectsBadDigit) {
  EXPECT_FALSE(DigitsGenerator::Template(-1).ok());
  EXPECT_FALSE(DigitsGenerator::Template(10).ok());
}

TEST(DigitsTest, SamplesOfSameClassVary) {
  DigitsConfig config;
  config.num_instances = 40;
  ml::Dataset d = DigitsGenerator(config).Generate();
  // Instances 0 and 10 are both class 0 but perturbed differently.
  ASSERT_EQ(d.labels()[0], d.labels()[10]);
  bool any_diff = false;
  for (size_t j = 0; j < 64; ++j) {
    if (d.features().At(0, j) != d.features().At(10, j)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(DigitsTest, RenderProducesEightLines) {
  auto tpl = DigitsGenerator::Template(3);
  ASSERT_TRUE(tpl.ok());
  std::string art = RenderDigit(tpl->data());
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
  EXPECT_EQ(art.size(), 8u * 9u);
}

}  // namespace
}  // namespace bcfl::data
