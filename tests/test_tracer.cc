#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::obs {
namespace {

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST(TracerTest, RecordsACompletedSpan) {
  Tracer tracer;
  { ScopedSpan span(tracer, "round", "fl"); }
  ASSERT_EQ(tracer.size(), 1u);
  SpanRecord record = tracer.Snapshot()[0];
  EXPECT_EQ(record.name, "round");
  EXPECT_EQ(record.category, "fl");
  EXPECT_EQ(record.parent_id, 0u);
  EXPECT_EQ(record.depth, 0u);
  EXPECT_GT(record.id, 0u);
}

TEST(TracerTest, NestedSpansLinkToTheirParent) {
  Tracer tracer;
  {
    ScopedSpan outer(tracer, "round", "fl");
    { ScopedSpan inner(tracer, "train", "fl"); }
    { ScopedSpan inner2(tracer, "eval", "fl"); }
  }
  ASSERT_EQ(tracer.size(), 3u);
  std::vector<SpanRecord> spans = tracer.Snapshot();
  const SpanRecord* outer = FindSpan(spans, "round");
  const SpanRecord* train = FindSpan(spans, "train");
  const SpanRecord* eval = FindSpan(spans, "eval");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(train, nullptr);
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(train->parent_id, outer->id);
  EXPECT_EQ(eval->parent_id, outer->id);
  EXPECT_EQ(train->depth, 1u);
  // Children close before the parent, so they are recorded first and the
  // parent's duration covers both.
  EXPECT_GE(outer->duration_ns, train->duration_ns + eval->duration_ns);
}

TEST(TracerTest, SpansFromPoolWorkersAreRootsOnTheirThread) {
  Tracer tracer;
  ThreadPool pool(4);
  {
    ScopedSpan outer(tracer, "sweep", "shapley");
    pool.ParallelFor(64, [&](size_t) {
      ScopedSpan worker(tracer, "chunk", "shapley");
    }, /*grain=*/4);
  }
  ASSERT_EQ(tracer.size(), 65u);
  // Worker spans opened on other threads have no parent; the one opened
  // on the caller's thread (ParallelFor runs shards inline too) may nest.
  size_t roots = 0;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (span.name == "chunk" && span.parent_id == 0) ++roots;
  }
  EXPECT_GT(roots, 0u);
}

TEST(TracerTest, WallClockDurationIsMeasured) {
  Tracer tracer;
  {
    ScopedSpan span(tracer, "sleep", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  SpanRecord record = tracer.Snapshot()[0];
  EXPECT_GE(record.duration_ns, 1'000'000u);  // >= 1ms of the 5ms slept.
}

TEST(TracerTest, AttachedSimClockStampsSpans) {
  Tracer tracer;
  SimClock clock(1000);
  tracer.AttachSimClock(&clock);
  {
    ScopedSpan span(tracer, "mask_round", "secureagg");
    clock.AdvanceMicros(250);
  }
  SpanRecord record = tracer.Snapshot()[0];
  EXPECT_TRUE(record.has_sim_time);
  EXPECT_EQ(record.sim_start_us, 1000u);
  EXPECT_EQ(record.sim_duration_us, 250u);
}

TEST(TracerTest, WithoutSimClockSpansHaveNoSimTime) {
  Tracer tracer;
  { ScopedSpan span(tracer, "a", "test"); }
  EXPECT_FALSE(tracer.Snapshot()[0].has_sim_time);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  { ScopedSpan span(tracer, "ghost", "test"); }
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  { ScopedSpan span(tracer, "real", "test"); }
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TracerTest, ResetDropsCompletedAndInFlightSpans) {
  Tracer tracer;
  { ScopedSpan done(tracer, "done", "test"); }
  uint64_t inflight = tracer.BeginSpan("inflight", "test");
  tracer.Reset();
  tracer.EndSpan(inflight);  // Stale generation: dropped, not recorded.
  EXPECT_EQ(tracer.size(), 0u);
  { ScopedSpan fresh(tracer, "fresh", "test"); }
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.Snapshot()[0].name, "fresh");
}

TEST(TracerTest, ChromeTraceJsonShape) {
  Tracer tracer;
  SimClock clock(10);
  tracer.AttachSimClock(&clock);
  {
    ScopedSpan outer(tracer, "block_commit", "chain");
    ScopedSpan inner(tracer, "proposal \"quoted\"", "chain");
  }
  std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"block_commit\""), std::string::npos);
  // String values are escaped, so quoted span names stay valid JSON.
  EXPECT_NE(json.find("proposal \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_ts_us\""), std::string::npos);
}

TEST(TracerTest, CsvHasHeaderAndOneRowPerSpan) {
  Tracer tracer;
  { ScopedSpan a(tracer, "a", "test"); }
  { ScopedSpan b(tracer, "b", "test"); }
  std::string csv = tracer.ToCsv();
  EXPECT_EQ(csv.find("name,category,id,parent_id,thread,depth,start_us,"
                     "duration_us,sim_start_us,sim_duration_us"),
            0u);
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);  // Header + two spans.
}

TEST(TracerTest, ConcurrentSpansUnderThreadPool) {
  Tracer tracer;
  ThreadPool pool(8);
  constexpr size_t kSpans = 2000;
  pool.ParallelFor(kSpans, [&](size_t) {
    ScopedSpan span(tracer, "unit", "test");
  }, /*grain=*/8);
  EXPECT_EQ(tracer.size(), kSpans);
}

TEST(GlobalTracerTest, IsASingleton) {
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
}

TEST(TracerMetricsSinkTest, ClosedSpansFeedCategoryHistograms) {
  Tracer tracer;
  MetricsRegistry registry;
  tracer.AttachMetrics(&registry);
  { ScopedSpan span(tracer, "mask_round", "secureagg"); }
  { ScopedSpan span(tracer, "mask_round", "secureagg"); }
  { ScopedSpan span(tracer, "commit", "chain"); }
  Histogram& mask = registry.GetHistogram("span.secureagg.mask_round_us");
  Histogram& commit = registry.GetHistogram("span.chain.commit_us");
  EXPECT_EQ(mask.Count(), 2u);
  EXPECT_EQ(commit.Count(), 1u);
  EXPECT_GE(mask.Sum(), 0.0);

  // Detaching stops the flow; the trace buffer still records.
  tracer.AttachMetrics(nullptr);
  { ScopedSpan span(tracer, "commit", "chain"); }
  EXPECT_EQ(commit.Count(), 1u);
  EXPECT_EQ(tracer.size(), 4u);
}

TEST(TracerMetricsSinkTest, GlobalTracerIsAttachedToGlobalRegistry) {
  const std::string name = "span.test.global_sink_probe_us";
  Histogram& h = MetricsRegistry::Global().GetHistogram(name);
  const uint64_t before = h.Count();
  { ScopedSpan span(Tracer::Global(), "global_sink_probe", "test"); }
  EXPECT_EQ(h.Count(), before + 1);
}

}  // namespace
}  // namespace bcfl::obs
