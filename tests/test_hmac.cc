#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace bcfl::crypto {
namespace {

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, "Hi There");
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: "Jefe" / "what do ya want for nothing?".
TEST(HmacTest, Rfc4231Case2) {
  Bytes key = {'J', 'e', 'f', 'e'};
  Digest mac = HmacSha256(key, "what do ya want for nothing?");
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x0xaa key, 50x0xdd data.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Digest mac = HmacSha256(key, data);
  EXPECT_EQ(DigestToHex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size is hashed first.
TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Digest mac = HmacSha256(
      key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  Bytes k1 = {1}, k2 = {2};
  EXPECT_NE(HmacSha256(k1, "msg"), HmacSha256(k2, "msg"));
}

TEST(HmacTest, DifferentMessagesDifferentMacs) {
  Bytes key = {1, 2, 3};
  EXPECT_NE(HmacSha256(key, "a"), HmacSha256(key, "b"));
}

TEST(HkdfTest, ExpandProducesRequestedLength) {
  Bytes prk(32, 0x11);
  for (size_t len : {1u, 16u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(HkdfExpand(prk, "label", len).size(), len);
  }
}

TEST(HkdfTest, ExpandIsDeterministicAndLabelSeparated) {
  Bytes prk(32, 0x22);
  EXPECT_EQ(HkdfExpand(prk, "a", 32), HkdfExpand(prk, "a", 32));
  EXPECT_NE(HkdfExpand(prk, "a", 32), HkdfExpand(prk, "b", 32));
}

TEST(HkdfTest, PrefixConsistency) {
  // Requesting fewer bytes yields a prefix of the longer expansion.
  Bytes prk(32, 0x33);
  Bytes long_out = HkdfExpand(prk, "x", 64);
  Bytes short_out = HkdfExpand(prk, "x", 20);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

TEST(HkdfTest, FullHkdfUsesSalt) {
  Bytes ikm(22, 0x0b);
  Bytes salt1 = {1}, salt2 = {2};
  EXPECT_NE(Hkdf(ikm, salt1, "info", 32), Hkdf(ikm, salt2, "info", 32));
}

// RFC 5869 test case 1.
TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt;
  for (uint8_t i = 0; i <= 0x0c; ++i) salt.push_back(i);
  Bytes info;
  for (uint8_t i = 0xf0; i <= 0xf9; ++i) info.push_back(i);
  Bytes okm = Hkdf(ikm, salt,
                   std::string_view(reinterpret_cast<const char*>(info.data()),
                                    info.size()),
                   42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

}  // namespace
}  // namespace bcfl::crypto
