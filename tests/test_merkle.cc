#include "chain/merkle.h"

#include <gtest/gtest.h>

#include "chain/sig_cache.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace bcfl::chain {
namespace {

crypto::Digest D(uint8_t fill) {
  crypto::Digest d;
  d.fill(fill);
  return d;
}

std::vector<crypto::Digest> RandomLeaves(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<crypto::Digest> leaves(n);
  for (auto& leaf : leaves) {
    for (auto& byte : leaf) byte = static_cast<uint8_t>(rng.Next());
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), D(0));
  EXPECT_EQ(tree.num_leaves(), 0u);
  EXPECT_TRUE(tree.Proof(0).status().IsOutOfRange());
}

TEST(MerkleTest, SingleLeafRootIsLeafHash) {
  crypto::Digest leaf = D(7);
  MerkleTree tree({leaf});
  EXPECT_EQ(tree.root(), MerkleTree::LeafHash(leaf));
}

TEST(MerkleTest, RootDependsOnEveryLeaf) {
  auto leaves = RandomLeaves(8, 1);
  MerkleTree original(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i][0] ^= 1;
    EXPECT_NE(MerkleTree(tampered).root(), original.root()) << "leaf " << i;
  }
}

TEST(MerkleTest, RootDependsOnOrder) {
  auto leaves = RandomLeaves(4, 2);
  auto swapped = leaves;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(MerkleTree(leaves).root(), MerkleTree(swapped).root());
}

TEST(MerkleTest, LeafAndNodeHashesAreDomainSeparated) {
  // A leaf hash must never equal an interior hash of the same bytes.
  crypto::Digest a = D(1), b = D(2);
  EXPECT_NE(MerkleTree::LeafHash(a), MerkleTree::NodeHash(a, b));
}

TEST(MerkleTest, OddCountDuplicatesLastNodeBitcoinStyle) {
  // root([a,b,c]) must be Node(Node(L(a),L(b)), Node(L(c),L(c))): the
  // unpaired node at each level is hashed with a copy of itself.
  crypto::Digest a = D(1), b = D(2), c = D(3);
  MerkleTree tree({a, b, c});
  crypto::Digest expected = MerkleTree::NodeHash(
      MerkleTree::NodeHash(MerkleTree::LeafHash(a), MerkleTree::LeafHash(b)),
      MerkleTree::NodeHash(MerkleTree::LeafHash(c), MerkleTree::LeafHash(c)));
  EXPECT_EQ(tree.root(), expected);
}

TEST(MerkleTest, AppendMatchesBatchBuildAtEverySize) {
  auto leaves = RandomLeaves(33, 77);
  MerkleTree incremental({});
  for (size_t n = 1; n <= leaves.size(); ++n) {
    incremental.Append(leaves[n - 1]);
    MerkleTree batch(std::vector<crypto::Digest>(leaves.begin(),
                                                 leaves.begin() +
                                                     static_cast<long>(n)));
    ASSERT_EQ(incremental.root(), batch.root()) << "n=" << n;
    ASSERT_EQ(incremental.num_leaves(), n);
  }
  // The incrementally grown tree serves valid proofs for every leaf.
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto proof = incremental.Proof(i);
    ASSERT_TRUE(proof.ok()) << "leaf " << i;
    EXPECT_TRUE(
        MerkleTree::VerifyProof(leaves[i], *proof, incremental.root()))
        << "leaf " << i;
  }
}

TEST(MerkleTest, PooledBuildIsBitIdenticalToSerial) {
  // Large enough to cross the chunking threshold, odd to also hit the
  // duplicate-last path, for several pool widths including 1.
  auto leaves = RandomLeaves(1001, 78);
  MerkleTree serial(leaves);
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    SetChainPool(&pool);
    MerkleTree pooled(leaves);
    SetChainPool(nullptr);
    EXPECT_EQ(serial.root(), pooled.root()) << "threads=" << threads;
  }
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, EveryLeafProves) {
  size_t n = GetParam();
  auto leaves = RandomLeaves(n, 3 + n);
  MerkleTree tree(leaves);
  for (size_t i = 0; i < n; ++i) {
    auto proof = tree.Proof(i);
    ASSERT_TRUE(proof.ok()) << "leaf " << i;
    EXPECT_TRUE(MerkleTree::VerifyProof(leaves[i], *proof, tree.root()))
        << "leaf " << i;
  }
}

TEST_P(MerkleProofTest, WrongLeafFailsProof) {
  size_t n = GetParam();
  auto leaves = RandomLeaves(n, 100 + n);
  MerkleTree tree(leaves);
  auto proof = tree.Proof(0);
  ASSERT_TRUE(proof.ok());
  crypto::Digest forged = leaves[0];
  forged[5] ^= 0xff;
  EXPECT_FALSE(MerkleTree::VerifyProof(forged, *proof, tree.root()));
}

// Odd sizes exercise the duplicate-last-node path.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33));

TEST(MerkleProofTest, TamperedProofStepFails) {
  auto leaves = RandomLeaves(8, 4);
  MerkleTree tree(leaves);
  auto proof = tree.Proof(3);
  ASSERT_TRUE(proof.ok());
  (*proof)[1].sibling[0] ^= 1;
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[3], *proof, tree.root()));
}

TEST(MerkleProofTest, ProofAgainstWrongRootFails) {
  auto leaves = RandomLeaves(8, 5);
  MerkleTree tree(leaves);
  auto proof = tree.Proof(2);
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[2], *proof, D(0xaa)));
}

TEST(MerkleProofTest, ProofSplicedFromAnotherLeafFails) {
  auto leaves = RandomLeaves(8, 79);
  MerkleTree tree(leaves);
  auto proof = tree.Proof(2);
  ASSERT_TRUE(proof.ok());
  // A valid proof for leaf 2 must not authenticate leaf 3.
  EXPECT_FALSE(MerkleTree::VerifyProof(leaves[3], *proof, tree.root()));
}

TEST(MerkleProofTest, InteriorNodePresentedAsLeafFails) {
  auto leaves = RandomLeaves(4, 80);
  MerkleTree tree(leaves);
  // Splice attack: claim the parent of leaves 0/1 is itself a leaf and
  // present the (otherwise valid) upper suffix of leaf 0's proof. The
  // 0x00/0x01 domain-separation tags must make this fail.
  crypto::Digest interior = MerkleTree::NodeHash(
      MerkleTree::LeafHash(leaves[0]), MerkleTree::LeafHash(leaves[1]));
  auto proof = tree.Proof(0);
  ASSERT_TRUE(proof.ok());
  std::vector<MerkleProofStep> upper(proof->begin() + 1, proof->end());
  EXPECT_FALSE(MerkleTree::VerifyProof(interior, upper, tree.root()));
}

TEST(MerkleProofTest, ProofLengthIsLogarithmic) {
  auto leaves = RandomLeaves(16, 6);
  MerkleTree tree(leaves);
  auto proof = tree.Proof(0);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof->size(), 4u);  // log2(16).
}

}  // namespace
}  // namespace bcfl::chain
