#include "data/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/digits.h"
#include "data/partition.h"

namespace bcfl::data {
namespace {

ml::Dataset Tiny(uint64_t seed = 1) {
  DigitsConfig config;
  config.num_instances = 100;
  config.seed = seed;
  return DigitsGenerator(config).Generate();
}

TEST(AddGaussianNoiseTest, ZeroSigmaIsNoop) {
  ml::Dataset d = Tiny();
  ml::Dataset copy = d;
  Xoshiro256 rng(1);
  AddGaussianNoise(&copy, 0.0, &rng);
  EXPECT_EQ(copy.features(), d.features());
}

TEST(AddGaussianNoiseTest, PerturbsWithExpectedMagnitude) {
  ml::Dataset d = Tiny();
  ml::Dataset noisy = d;
  Xoshiro256 rng(2);
  AddGaussianNoise(&noisy, 2.0, &rng);
  double sum_sq = 0;
  size_t n = d.features().size();
  for (size_t i = 0; i < n; ++i) {
    double diff = noisy.features().data()[i] - d.features().data()[i];
    sum_sq += diff * diff;
  }
  double empirical_sigma = std::sqrt(sum_sq / static_cast<double>(n));
  EXPECT_NEAR(empirical_sigma, 2.0, 0.1);
}

TEST(QualityGradientTest, OwnerZeroStaysClean) {
  ml::Dataset d = Tiny();
  Xoshiro256 rng(3);
  auto parts = PartitionUniform(d, 4, &rng);
  ASSERT_TRUE(parts.ok());
  std::vector<ml::Dataset> original = *parts;
  ASSERT_TRUE(ApplyQualityGradient(&*parts, 0.5, 42).ok());
  EXPECT_EQ((*parts)[0].features(), original[0].features());
  // Later owners must be perturbed.
  EXPECT_NE((*parts)[1].features(), original[1].features());
  EXPECT_NE((*parts)[3].features(), original[3].features());
}

TEST(QualityGradientTest, NoiseGrowsWithOwnerIndex) {
  ml::Dataset d = Tiny(5);
  Xoshiro256 rng(4);
  auto parts = PartitionUniform(d, 4, &rng);
  ASSERT_TRUE(parts.ok());
  std::vector<ml::Dataset> original = *parts;
  ASSERT_TRUE(ApplyQualityGradient(&*parts, 1.0, 43).ok());
  std::vector<double> rms(4, 0.0);
  for (size_t p = 1; p < 4; ++p) {
    double sum_sq = 0;
    size_t n = original[p].features().size();
    for (size_t i = 0; i < n; ++i) {
      double diff =
          (*parts)[p].features().data()[i] - original[p].features().data()[i];
      sum_sq += diff * diff;
    }
    rms[p] = std::sqrt(sum_sq / static_cast<double>(n));
  }
  EXPECT_LT(rms[1], rms[2]);
  EXPECT_LT(rms[2], rms[3]);
  EXPECT_NEAR(rms[1], 1.0, 0.2);
  EXPECT_NEAR(rms[3], 3.0, 0.5);
}

TEST(QualityGradientTest, RejectsBadArguments) {
  std::vector<ml::Dataset> empty;
  EXPECT_TRUE(ApplyQualityGradient(&empty, 0.5, 1).IsInvalidArgument());
  EXPECT_TRUE(ApplyQualityGradient(nullptr, 0.5, 1).IsInvalidArgument());
  ml::Dataset d = Tiny();
  std::vector<ml::Dataset> one = {d};
  EXPECT_TRUE(ApplyQualityGradient(&one, -1.0, 1).IsInvalidArgument());
}

TEST(FlipLabelsTest, ZeroProbabilityIsNoop) {
  ml::Dataset d = Tiny();
  std::vector<int> original = d.labels();
  Xoshiro256 rng(5);
  ASSERT_TRUE(FlipLabels(&d, 0.0, &rng).ok());
  EXPECT_EQ(d.labels(), original);
}

TEST(FlipLabelsTest, FullProbabilityFlipsEverything) {
  ml::Dataset d = Tiny();
  std::vector<int> original = d.labels();
  Xoshiro256 rng(6);
  ASSERT_TRUE(FlipLabels(&d, 1.0, &rng).ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NE(d.labels()[i], original[i]);
    EXPECT_GE(d.labels()[i], 0);
    EXPECT_LT(d.labels()[i], 10);
  }
}

TEST(FlipLabelsTest, PartialProbabilityFlipsFraction) {
  DigitsConfig config;
  config.num_instances = 2000;
  ml::Dataset d = DigitsGenerator(config).Generate();
  std::vector<int> original = d.labels();
  Xoshiro256 rng(7);
  ASSERT_TRUE(FlipLabels(&d, 0.3, &rng).ok());
  size_t flipped = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    if (d.labels()[i] != original[i]) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 2000.0, 0.3, 0.04);
}

TEST(FlipLabelsTest, RejectsBadArguments) {
  ml::Dataset d = Tiny();
  Xoshiro256 rng(8);
  EXPECT_TRUE(FlipLabels(nullptr, 0.5, &rng).IsInvalidArgument());
  EXPECT_TRUE(FlipLabels(&d, 1.5, &rng).IsInvalidArgument());
  EXPECT_TRUE(FlipLabels(&d, -0.5, &rng).IsInvalidArgument());
}

}  // namespace
}  // namespace bcfl::data
