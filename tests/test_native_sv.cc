#include "shapley/native_sv.h"

#include <gtest/gtest.h>

#include <numeric>

#include "data/digits.h"
#include "data/noise.h"
#include "data/partition.h"

namespace bcfl::shapley {
namespace {

struct Fixture {
  ml::Dataset test;
  std::unique_ptr<fl::FederatedTrainer> trainer;
  std::unique_ptr<TestAccuracyUtility> utility;

  static Fixture Make(size_t owners, double sigma, size_t instances = 600) {
    data::DigitsConfig config;
    config.num_instances = instances;
    config.seed = 9;
    ml::Dataset full = data::DigitsGenerator(config).Generate();
    Xoshiro256 rng(9);
    auto split = full.TrainTestSplit(0.8, &rng);
    auto parts = data::PartitionUniform(split->first, owners, &rng);
    EXPECT_TRUE(data::ApplyQualityGradient(&*parts, sigma, 10).ok());

    ml::LogisticRegressionConfig lr;
    lr.learning_rate = 0.05;
    lr.epochs = 3;
    std::vector<fl::FlClient> clients;
    for (size_t i = 0; i < owners; ++i) {
      clients.emplace_back(static_cast<fl::OwnerId>(i),
                           std::move((*parts)[i]), lr);
    }
    fl::FlConfig fl_config;
    fl_config.rounds = 3;
    fl_config.local = lr;
    Fixture f;
    f.test = std::move(split->second);
    f.trainer = std::make_unique<fl::FederatedTrainer>(std::move(clients),
                                                       fl_config);
    f.utility = std::make_unique<TestAccuracyUtility>(f.test);
    return f;
  }
};

TEST(NativeShapleyTest, UtilityTableHasPowersetSize) {
  Fixture f = Fixture::Make(3, 0.0);
  NativeShapleyConfig config;
  config.epochs = 30;
  NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
  auto result = shapley.Compute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values.size(), 3u);
  EXPECT_EQ(result->utility_table.size(), 8u);
  // Empty coalition = untrained model = ~chance accuracy.
  EXPECT_LT(result->utility_table[0], 0.35);
  // Grand coalition trains properly.
  EXPECT_GT(result->utility_table[7], 0.5);
}

TEST(NativeShapleyTest, EfficiencyHolds) {
  Fixture f = Fixture::Make(3, 0.0);
  NativeShapleyConfig config;
  config.epochs = 5;
  NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
  auto result = shapley.Compute();
  ASSERT_TRUE(result.ok());
  double sum =
      std::accumulate(result->values.begin(), result->values.end(), 0.0);
  EXPECT_NEAR(sum, result->utility_table.back() - result->utility_table[0],
              1e-9);
}

TEST(NativeShapleyTest, NoisyOwnerScoresLowerThanCleanOwner) {
  // Strong quality gradient: owner 0 clean, owner 2 very noisy.
  Fixture f = Fixture::Make(3, 4.0, 900);
  NativeShapleyConfig config;
  config.epochs = 10;
  NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
  auto result = shapley.Compute();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->values[0], result->values[2]);
}

TEST(NativeShapleyTest, ParallelMatchesSerial) {
  Fixture f1 = Fixture::Make(3, 0.5);
  Fixture f2 = Fixture::Make(3, 0.5);
  NativeShapleyConfig serial_config;
  serial_config.epochs = 4;
  NativeShapley serial(f1.trainer.get(), f1.utility.get(), serial_config);

  ThreadPool pool(4);
  NativeShapleyConfig parallel_config;
  parallel_config.epochs = 4;
  parallel_config.pool = &pool;
  NativeShapley parallel(f2.trainer.get(), f2.utility.get(),
                         parallel_config);

  auto r1 = serial.Compute();
  auto r2 = parallel.Compute();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r1->values[i], r2->values[i]);
  }
}

TEST(NativeShapleyTest, BitIdenticalForPoolSizes1_2_8) {
  // The determinism contract: coalition retraining is RNG-free and every
  // parallel stage writes index-addressed slots, so the SVs and the full
  // utility table must be *bit-identical* (not just close) for any pool
  // size, including no pool.
  NativeShapleyConfig base_config;
  base_config.epochs = 4;
  Fixture serial_fixture = Fixture::Make(3, 0.5);
  NativeShapley serial(serial_fixture.trainer.get(),
                       serial_fixture.utility.get(), base_config);
  auto reference = serial.Compute();
  ASSERT_TRUE(reference.ok());

  for (size_t pool_size : {size_t{1}, size_t{2}, size_t{8}}) {
    Fixture f = Fixture::Make(3, 0.5);
    ThreadPool pool(pool_size);
    NativeShapleyConfig config = base_config;
    config.pool = &pool;
    NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
    auto result = shapley.Compute();
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->values.size(), reference->values.size());
    for (size_t i = 0; i < reference->values.size(); ++i) {
      EXPECT_EQ(result->values[i], reference->values[i])
          << "SV " << i << " diverged with pool size " << pool_size;
    }
    ASSERT_EQ(result->utility_table.size(), reference->utility_table.size());
    for (size_t m = 0; m < reference->utility_table.size(); ++m) {
      EXPECT_EQ(result->utility_table[m], reference->utility_table[m])
          << "utility of mask " << m << " diverged with pool size "
          << pool_size;
    }
  }
}

TEST(NativeShapleyTest, CachedUtilityMatchesUncached) {
  Fixture f1 = Fixture::Make(3, 0.5);
  Fixture f2 = Fixture::Make(3, 0.5);
  NativeShapleyConfig config;
  config.epochs = 4;
  NativeShapley plain(f1.trainer.get(), f1.utility.get(), config);
  config.cache_utilities = true;
  NativeShapley cached(f2.trainer.get(), f2.utility.get(), config);
  auto r1 = plain.Compute();
  auto r2 = cached.Compute();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < r1->values.size(); ++i) {
    EXPECT_EQ(r1->values[i], r2->values[i]);
  }
  // Second run re-evaluates nothing it has seen; values are unchanged.
  auto r3 = cached.Compute();
  ASSERT_TRUE(r3.ok());
  for (size_t i = 0; i < r1->values.size(); ++i) {
    EXPECT_EQ(r1->values[i], r3->values[i]);
  }
}

TEST(NativeShapleyTest, AggregateFromLocalsUsesProvidedWeights) {
  Fixture f = Fixture::Make(3, 0.0);
  auto run = f.trainer->Run();
  ASSERT_TRUE(run.ok());
  const auto& finals = run->per_round_locals.back();

  NativeShapleyConfig config;
  config.source = CoalitionModelSource::kAggregateFromLocals;
  NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
  auto result = shapley.Compute(&finals);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->values.size(), 3u);
  // Missing locals is an error.
  EXPECT_FALSE(shapley.Compute(nullptr).ok());
  std::vector<ml::Matrix> short_list = {finals[0]};
  EXPECT_FALSE(shapley.Compute(&short_list).ok());
}

TEST(NativeShapleyTest, RejectsTooManyOwners) {
  Fixture f = Fixture::Make(2, 0.0);
  // Fabricate an oversized trainer via config check: n > 20 guard is in
  // Compute(); we simulate by checking the 2-owner path works and trust
  // the guard test through ExactShapley (covered elsewhere).
  NativeShapleyConfig config;
  config.epochs = 2;
  NativeShapley shapley(f.trainer.get(), f.utility.get(), config);
  EXPECT_TRUE(shapley.Compute().ok());
}

}  // namespace
}  // namespace bcfl::shapley
