#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/sim_clock.h"

namespace bcfl {
namespace {

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMicros(150);
  EXPECT_EQ(clock.NowMicros(), 150u);
  clock.AdvanceMicros(50);
  EXPECT_EQ(clock.NowMicros(), 200u);
}

TEST(SimClockTest, ExplicitStartTime) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000u);
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock(500);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.NowMicros(), 500u);
  clock.AdvanceTo(700);
  EXPECT_EQ(clock.NowMicros(), 700u);
}

TEST(StopwatchTest, MeasuresElapsedWallTime) {
  Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
  EXPECT_NEAR(timer.ElapsedSeconds() * 1000.0, timer.ElapsedMillis(), 5.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 10.0);
}

TEST(LoggerTest, ThresholdFiltersMessages) {
  Logger& logger = Logger::Global();
  LogLevel previous = logger.min_level();
  // Everything below Error is dropped; this test mainly asserts that
  // the call sites are safe at any threshold (no crash, no throw).
  logger.set_min_level(LogLevel::kError);
  BCFL_LOG_DEBUG() << "dropped debug " << 1;
  BCFL_LOG_INFO() << "dropped info " << 2.5;
  BCFL_LOG_WARN() << "dropped warn";
  logger.set_min_level(LogLevel::kNone);
  BCFL_LOG_ERROR() << "dropped error";
  logger.set_min_level(previous);
  SUCCEED();
}

TEST(LoggerTest, GlobalIsSingleton) {
  EXPECT_EQ(&Logger::Global(), &Logger::Global());
}

}  // namespace
}  // namespace bcfl
