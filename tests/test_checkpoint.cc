#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace bcfl::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bcfl_checkpoint_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A checkpoint exercising every field, including empty/non-empty maps,
  /// an active drop stream and a cached gaussian.
  SessionCheckpoint Sample() {
    SessionCheckpoint cp;
    cp.config_fingerprint = 0xDEADBEEFCAFEF00Dull;
    cp.next_round = 3;
    cp.session_rng.s = {1, 2, 3, 4};
    cp.session_rng.has_cached_gaussian = true;
    cp.session_rng.cached_gaussian = -0.75;
    cp.network.rng.s = {5, 6, 7, 8};
    cp.network.next_seq = 42;
    cp.network.clock_us = 9'000'000;
    cp.network.drop_streams.emplace_back(1, 2, 0x1234abcdull);
    cp.tip_height = 4;
    cp.tip_hash.fill(0xAB);
    cp.miner_heights = {{0, 4}, {1, 4}, {2, 3}};
    cp.global_weights = ml::Matrix(3, 2);
    cp.global_weights.At(1, 1) = 0.125;
    cp.global_weights.At(2, 0) = -7.5;
    cp.per_round_sv = {{0.1, 0.2, 0.7}, {0.3, 0.3, 0.4}, {0.0, 0.5, 0.5}};
    cp.round_accuracies = {0.4, 0.6, 0.85};
    cp.blocks_committed = 3;
    cp.total_transactions = 9;
    cp.recover_transactions = 1;
    cp.submission_retries = 2;
    cp.slash_transactions = 1;
    cp.retired_at = {{2, 1}};
    cp.slashed_at = {{2, 1}};
    cp.ledger_rounds = 3;
    return cp;
  }

  void ExpectEqual(const SessionCheckpoint& a, const SessionCheckpoint& b) {
    EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
    EXPECT_EQ(a.next_round, b.next_round);
    EXPECT_EQ(a.session_rng.s, b.session_rng.s);
    EXPECT_EQ(a.session_rng.has_cached_gaussian,
              b.session_rng.has_cached_gaussian);
    EXPECT_EQ(a.session_rng.cached_gaussian, b.session_rng.cached_gaussian);
    EXPECT_EQ(a.network.rng.s, b.network.rng.s);
    EXPECT_EQ(a.network.next_seq, b.network.next_seq);
    EXPECT_EQ(a.network.clock_us, b.network.clock_us);
    EXPECT_EQ(a.network.drop_streams, b.network.drop_streams);
    EXPECT_EQ(a.tip_height, b.tip_height);
    EXPECT_EQ(a.tip_hash, b.tip_hash);
    EXPECT_EQ(a.miner_heights, b.miner_heights);
    EXPECT_TRUE(a.global_weights == b.global_weights);
    EXPECT_EQ(a.per_round_sv, b.per_round_sv);
    EXPECT_EQ(a.round_accuracies, b.round_accuracies);
    EXPECT_EQ(a.blocks_committed, b.blocks_committed);
    EXPECT_EQ(a.total_transactions, b.total_transactions);
    EXPECT_EQ(a.recover_transactions, b.recover_transactions);
    EXPECT_EQ(a.submission_retries, b.submission_retries);
    EXPECT_EQ(a.slash_transactions, b.slash_transactions);
    EXPECT_EQ(a.retired_at, b.retired_at);
    EXPECT_EQ(a.slashed_at, b.slashed_at);
    EXPECT_EQ(a.ledger_rounds, b.ledger_rounds);
  }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, SerializeRoundTrip) {
  SessionCheckpoint cp = Sample();
  auto decoded = SessionCheckpoint::Deserialize(cp.Serialize());
  ASSERT_TRUE(decoded.ok());
  ExpectEqual(cp, *decoded);
}

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  SessionCheckpoint cp = Sample();
  ASSERT_TRUE(SaveCheckpoint(cp, Path("cp.bckp")).ok());
  auto loaded = LoadCheckpoint(Path("cp.bckp"));
  ASSERT_TRUE(loaded.ok());
  ExpectEqual(cp, *loaded);
  // No stray temp file remains after the atomic rename.
  EXPECT_FALSE(std::filesystem::exists(Path("cp.bckp.tmp")));
}

TEST_F(CheckpointTest, OverwriteReplacesAtomically) {
  SessionCheckpoint first = Sample();
  SessionCheckpoint second = Sample();
  second.next_round = 7;
  second.round_accuracies.push_back(0.9);
  ASSERT_TRUE(SaveCheckpoint(first, Path("cp.bckp")).ok());
  ASSERT_TRUE(SaveCheckpoint(second, Path("cp.bckp")).ok());
  auto loaded = LoadCheckpoint(Path("cp.bckp"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->next_round, 7u);
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadCheckpoint(Path("nope.bckp")).status().IsNotFound());
}

TEST_F(CheckpointTest, EmptyFileIsCorruption) {
  { std::ofstream touch(Path("empty.bckp")); }
  EXPECT_TRUE(LoadCheckpoint(Path("empty.bckp")).status().IsCorruption());
}

TEST_F(CheckpointTest, BadMagicIsCorruption) {
  std::ofstream(Path("bad.bckp")) << "XXXXgarbage that is long enough";
  EXPECT_TRUE(LoadCheckpoint(Path("bad.bckp")).status().IsCorruption());
}

TEST_F(CheckpointTest, UnsupportedVersionIsRejected) {
  ASSERT_TRUE(SaveCheckpoint(Sample(), Path("cp.bckp")).ok());
  std::fstream file(Path("cp.bckp"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(4);  // Version field follows the 4-byte magic.
  uint32_t bad_version = 99;
  file.write(reinterpret_cast<const char*>(&bad_version), 4);
  file.close();
  EXPECT_TRUE(LoadCheckpoint(Path("cp.bckp")).status().IsUnimplemented());
}

// Torn-write fuzz: every truncation point of the file must fail closed —
// a checkpoint half-written by a crash is never half-loaded. (SaveCheckpoint
// writes via tmp+rename so this file state "cannot happen"; the loader
// still refuses it.)
TEST_F(CheckpointTest, TruncationAtEveryByteFailsClosed) {
  ASSERT_TRUE(SaveCheckpoint(Sample(), Path("cp.bckp")).ok());
  std::ifstream in(Path("cp.bckp"), std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(full.size(), 16u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::ofstream out(Path("torn.bckp"), std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<long>(cut));
    out.close();
    auto loaded = LoadCheckpoint(Path("torn.bckp"));
    EXPECT_FALSE(loaded.ok()) << "cut at byte " << cut;
  }
}

// Bit-flip fuzz: a flip anywhere in the file — header, length, CRC or
// payload — must fail the load closed, never yield a different checkpoint.
TEST_F(CheckpointTest, BitFlipAnywhereFailsClosed) {
  ASSERT_TRUE(SaveCheckpoint(Sample(), Path("cp.bckp")).ok());
  std::ifstream in(Path("cp.bckp"), std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x08);
    std::ofstream out(Path("flip.bckp"), std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<long>(mutated.size()));
    out.close();
    auto loaded = LoadCheckpoint(Path("flip.bckp"));
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << pos;
  }
}

}  // namespace
}  // namespace bcfl::core
