// Byzantine participant hardening, end to end (PR 9): forged shares,
// equivocation, poisoned updates and inconsistent masks are detected,
// slashed on chain, and degrade the round exactly as a crash of the same
// owner would — on both round engines.

#include <gtest/gtest.h>

#include "core/coordinator.h"
#include "core/state_keys.h"
#include "fault/fault_plan.h"

namespace bcfl::core {
namespace {

/// Six owners so one crash plus one byzantine offender still leaves a
/// Shamir quorum (t = n/2 + 1 = 4).
BcflConfig ByzantineConfig() {
  BcflConfig config;
  config.num_owners = 6;
  config.num_miners = 3;
  config.rounds = 3;
  config.num_groups = 2;
  config.seed = 21;
  config.seed_e = 5;
  config.sigma = 0.0;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 400;
  config.update_norm_bound = 5.0;
  return config;
}

Result<BcflRunResult> RunPlan(BcflConfig config, const std::string& plan,
                              RoundEngineMode mode) {
  config.fault_plan = *fault::FaultPlan::Parse(plan);
  config.round_engine = mode;
  if (mode == RoundEngineMode::kParallel) config.pool_threads = 3;
  auto coordinator = BcflCoordinator::Create(config);
  if (!coordinator.ok()) return coordinator.status();
  return (*coordinator)->Run();
}

/// The PR's acceptance invariant: a slashed byzantine owner leaves the
/// round's aggregate, SV vector and retirement roster bit-identical to a
/// run where that owner simply crashed.
void ExpectSlashEqualsCrash(const BcflConfig& config,
                            const std::string& byzantine_plan,
                            const std::string& crash_plan,
                            RoundEngineMode mode) {
  auto byz = RunPlan(config, byzantine_plan, mode);
  ASSERT_TRUE(byz.ok()) << byz.status().ToString();
  auto crash = RunPlan(config, crash_plan, mode);
  ASSERT_TRUE(crash.ok()) << crash.status().ToString();
  EXPECT_EQ(byz->per_round_sv, crash->per_round_sv);
  EXPECT_EQ(byz->total_sv, crash->total_sv);
  EXPECT_EQ(byz->global_weights, crash->global_weights);
  EXPECT_EQ(byz->round_accuracies, crash->round_accuracies);
  EXPECT_EQ(byz->retired_at, crash->retired_at);
  EXPECT_TRUE(crash->slashed_at.empty());
  EXPECT_FALSE(byz->slashed_at.empty());
}

class SlashEqualsCrashTest
    : public ::testing::TestWithParam<RoundEngineMode> {};

TEST_P(SlashEqualsCrashTest, BadShareForgerDuringRecovery) {
  // Owner 1 crashes; during its recovery owner 3 reveals a forged share,
  // is convicted on chain, and the round degrades exactly as if owner 3
  // had crashed alongside owner 1.
  BcflConfig config = ByzantineConfig();
  ExpectSlashEqualsCrash(config, "crash owner 1 @1; bad-share owner 3 @1",
                         "crash owner 1 @1; crash owner 3 @1", GetParam());
  auto byz = RunPlan(config, "crash owner 1 @1; bad-share owner 3 @1",
                     GetParam());
  ASSERT_TRUE(byz.ok());
  ASSERT_EQ(byz->slashed_at.size(), 1u);
  EXPECT_EQ(byz->slashed_at.at(3), 1u);
  EXPECT_EQ(byz->slash_transactions, 1u);
  EXPECT_EQ(byz->retired_at.at(3), 1u);
}

TEST_P(SlashEqualsCrashTest, EquivocatingSubmitter) {
  ExpectSlashEqualsCrash(ByzantineConfig(), "equivocate-submit owner 2 @1",
                         "crash owner 2 @1", GetParam());
}

TEST_P(SlashEqualsCrashTest, PoisonedUpdateCaughtByNormGate) {
  // Honest masking hides the poison from inspection; the norm gate on the
  // decoded aggregate flags the group and the audit convicts the poisoner.
  ExpectSlashEqualsCrash(ByzantineConfig(), "poison-update owner 4 @2 *50",
                         "crash owner 4 @2", GetParam());
}

TEST_P(SlashEqualsCrashTest, InconsistentMaskCaughtByNormGate) {
  // Garbage masks never cancel, so the decoded group aggregate explodes;
  // the audit unmasks the members and convicts the inconsistent one.
  ExpectSlashEqualsCrash(ByzantineConfig(), "inconsistent-mask owner 0 @1",
                         "crash owner 0 @1", GetParam());
}

INSTANTIATE_TEST_SUITE_P(Engines, SlashEqualsCrashTest,
                         ::testing::Values(RoundEngineMode::kSerial,
                                           RoundEngineMode::kParallel),
                         [](const auto& info) {
                           return info.param == RoundEngineMode::kSerial
                                      ? "Serial"
                                      : "Parallel";
                         });

TEST(ByzantineTest, SlashIsCommittedOnChainByEveryMiner) {
  BcflConfig config = ByzantineConfig();
  config.fault_plan =
      *fault::FaultPlan::Parse("crash owner 1 @1; bad-share owner 3 @1");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());

  // The conviction and its crash-equivalent records are canonical state,
  // agreed by every miner's replica.
  auto& engine = (*coordinator)->engine();
  EXPECT_TRUE(engine.CanonicalState().Has(keys::Slashed(3)));
  EXPECT_TRUE(engine.CanonicalState().Has(keys::Retired(3)));
  EXPECT_TRUE(engine.CanonicalState().Has(keys::Dropped(1, 3)));
  EXPECT_FALSE(engine.CanonicalState().Has(keys::Update(1, 3)));
  auto root = engine.miner(0).state().StateRoot();
  for (size_t m = 1; m < engine.num_miners(); ++m) {
    EXPECT_EQ(engine.miner(m).state().StateRoot(), root);
  }
}

TEST(ByzantineTest, SlashedOwnerRewardIsBurnedNotRedistributed) {
  BcflConfig config = ByzantineConfig();
  config.reward_pool = 1'000'000;
  config.fault_plan =
      *fault::FaultPlan::Parse("crash owner 1 @1; bad-share owner 3 @1");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->rewards.size(), 6u);
  EXPECT_EQ(result->rewards[3], 0u);  // Forfeited.
  EXPECT_GT(result->reward_burned, 0u);
  // Burned + claimed == pool minus the crashed (unclaimable) allocation:
  // the offender's share went to the sink, not to the survivors.
  uint64_t claimed = 0;
  for (uint32_t i = 0; i < 6; ++i) claimed += result->rewards[i];
  EXPECT_LE(claimed + result->reward_burned, 1'000'000u);
  EXPECT_GT(claimed, 0u);
}

TEST(ByzantineTest, MixedByzantinePlanIsEngineModeInvariant) {
  // Equivocation at round 1 and poisoning at round 2 in one session: the
  // parallel engine must land the identical chain.
  BcflConfig config = ByzantineConfig();
  auto serial = RunPlan(
      config, "equivocate-submit owner 2 @1; poison-update owner 4 @2 *50",
      RoundEngineMode::kSerial);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunPlan(
      config, "equivocate-submit owner 2 @1; poison-update owner 4 @2 *50",
      RoundEngineMode::kParallel);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->per_round_sv, parallel->per_round_sv);
  EXPECT_EQ(serial->total_sv, parallel->total_sv);
  EXPECT_EQ(serial->global_weights, parallel->global_weights);
  EXPECT_EQ(serial->round_accuracies, parallel->round_accuracies);
  EXPECT_EQ(serial->retired_at, parallel->retired_at);
  EXPECT_EQ(serial->slashed_at, parallel->slashed_at);
  EXPECT_EQ(serial->slash_transactions, parallel->slash_transactions);
  EXPECT_EQ(serial->blocks_committed, parallel->blocks_committed);
  EXPECT_EQ(serial->total_transactions, parallel->total_transactions);
}

TEST(ByzantineTest, PoisonWithoutNormBoundGoesUndetected) {
  // The gate is opt-in: with no agreed bound the poisoned round still
  // completes (and converges worse) — documenting why deployments set
  // update_norm_bound.
  BcflConfig config = ByzantineConfig();
  config.update_norm_bound = 0.0;
  auto result =
      RunPlan(config, "poison-update owner 4 @1 *50", RoundEngineMode::kParallel);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->slashed_at.empty());
  EXPECT_TRUE(result->retired_at.empty());
  EXPECT_EQ(result->round_accuracies.size(), 3u);
}

TEST(ByzantineTest, LedgerRecordsSlashesAndAccusations) {
  BcflConfig config = ByzantineConfig();
  config.fault_plan = *fault::FaultPlan::Parse("equivocate-submit owner 2 @1");
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  obs::RoundLedger ledger;
  std::string path = ::testing::TempDir() + "byzantine_ledger.jsonl";
  ASSERT_TRUE(ledger.Open(path).ok());
  (*coordinator)->set_round_ledger(&ledger);
  auto result = (*coordinator)->Run();
  ASSERT_TRUE(result.ok());
  ledger.Close();

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("\"slashed\":[2]"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"accusations\":1"), std::string::npos);
}

}  // namespace
}  // namespace bcfl::core
