#include "privacy/mechanisms.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcfl::privacy {
namespace {

TEST(ClipL2Test, LeavesSmallMatricesUntouched) {
  ml::Matrix m(2, 2, 0.1);  // Norm 0.2.
  ml::Matrix original = m;
  double norm = ClipL2(&m, 1.0);
  EXPECT_NEAR(norm, 0.2, 1e-12);
  EXPECT_EQ(m, original);
}

TEST(ClipL2Test, ScalesLargeMatricesToBound) {
  ml::Matrix m(1, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = 4;  // Norm 5.
  double norm = ClipL2(&m, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(m.FrobeniusNorm(), 1.0, 1e-12);
  // Direction preserved.
  EXPECT_NEAR(m.At(0, 0) / m.At(0, 1), 0.75, 1e-12);
}

TEST(GaussianSigmaTest, MatchesAnalyticFormula) {
  DpParams params{1.0, 1e-5};
  auto sigma = GaussianSigma(params, 2.0);
  ASSERT_TRUE(sigma.ok());
  EXPECT_NEAR(*sigma, std::sqrt(2.0 * std::log(1.25e5)) * 2.0, 1e-9);
}

TEST(GaussianSigmaTest, ShrinksWithEpsilon) {
  auto loose = GaussianSigma({10.0, 1e-5}, 1.0);
  auto tight = GaussianSigma({0.1, 1e-5}, 1.0);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(*loose, *tight);
}

TEST(GaussianSigmaTest, RejectsBadParams) {
  EXPECT_FALSE(GaussianSigma({0.0, 1e-5}, 1.0).ok());
  EXPECT_FALSE(GaussianSigma({1.0, 0.0}, 1.0).ok());
  EXPECT_FALSE(GaussianSigma({1.0, 1.5}, 1.0).ok());
  EXPECT_FALSE(GaussianSigma({1.0, 1e-5}, 0.0).ok());
}

TEST(NoiseTest, GaussianNoiseHasConfiguredScale) {
  ml::Matrix m(100, 100);
  Xoshiro256 rng(1);
  AddGaussianNoise(&m, 3.0, &rng);
  double sum_sq = 0;
  for (double v : m.data()) sum_sq += v * v;
  double rms = std::sqrt(sum_sq / static_cast<double>(m.size()));
  EXPECT_NEAR(rms, 3.0, 0.1);
}

TEST(NoiseTest, LaplaceNoiseHasConfiguredScale) {
  // Laplace(b) has variance 2b^2.
  ml::Matrix m(100, 100);
  Xoshiro256 rng(2);
  AddLaplaceNoise(&m, 2.0, &rng);
  double sum_sq = 0;
  for (double v : m.data()) sum_sq += v * v;
  double var = sum_sq / static_cast<double>(m.size());
  EXPECT_NEAR(var, 8.0, 0.5);
}

TEST(NoiseTest, NonPositiveScaleIsNoop) {
  ml::Matrix m(3, 3, 1.0);
  ml::Matrix original = m;
  Xoshiro256 rng(3);
  AddGaussianNoise(&m, 0.0, &rng);
  AddLaplaceNoise(&m, -1.0, &rng);
  EXPECT_EQ(m, original);
}

TEST(LaplaceScaleTest, Formula) {
  auto scale = LaplaceScale(0.5, 2.0);
  ASSERT_TRUE(scale.ok());
  EXPECT_DOUBLE_EQ(*scale, 4.0);
  EXPECT_FALSE(LaplaceScale(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceScale(1.0, -1.0).ok());
}

TEST(AccountantTest, BasicCompositionSums) {
  PrivacyAccountant accountant;
  accountant.Record({0.5, 1e-6});
  accountant.Record({0.25, 1e-6});
  accountant.Record({0.25, 2e-6});
  DpParams total = accountant.BasicComposition();
  EXPECT_NEAR(total.epsilon, 1.0, 1e-12);
  EXPECT_NEAR(total.delta, 4e-6, 1e-15);
  EXPECT_EQ(accountant.num_releases(), 3u);
}

TEST(AccountantTest, AdvancedBeatsBasicForManySmallReleases) {
  PrivacyAccountant accountant;
  for (int i = 0; i < 100; ++i) accountant.Record({0.1, 1e-7});
  DpParams basic = accountant.BasicComposition();
  auto advanced = accountant.AdvancedComposition(1e-6);
  ASSERT_TRUE(advanced.ok());
  EXPECT_LT(advanced->epsilon, basic.epsilon);
  EXPECT_GT(advanced->delta, basic.delta);  // Pays the delta' slack.
}

TEST(AccountantTest, EmptyAccountantIsZero) {
  PrivacyAccountant accountant;
  auto advanced = accountant.AdvancedComposition();
  ASSERT_TRUE(advanced.ok());
  EXPECT_EQ(advanced->epsilon, 0.0);
  EXPECT_FALSE(PrivacyAccountant().AdvancedComposition(2.0).ok());
}

TEST(DistributedNoiseTest, SharesSumToTargetVariance) {
  double share = DistributedNoiseShareSigma(3.0, 9);
  EXPECT_NEAR(share, 1.0, 1e-12);
  // Empirically: sum of 9 clients' shares has std ~3.
  Xoshiro256 rng(4);
  double sum_sq = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    double total = 0;
    for (int c = 0; c < 9; ++c) total += rng.NextGaussian(0.0, share);
    sum_sq += total * total;
  }
  EXPECT_NEAR(std::sqrt(sum_sq / kTrials), 3.0, 0.1);
}

}  // namespace
}  // namespace bcfl::privacy
