#include "shapley/group_sv.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "shapley/shapley_math.h"

namespace bcfl::shapley {
namespace {

/// Utility that scores a 1x1 "model" by its single weight value — makes
/// GroupSV hand-checkable.
class ScalarUtility : public UtilityFunction {
 public:
  Result<double> Evaluate(const ml::Matrix& weights) override {
    return weights.At(0, 0);
  }
};

ml::Matrix Scalar(double v) {
  ml::Matrix m(1, 1);
  m.At(0, 0) = v;
  return m;
}

TEST(PermutationFromSeedTest, DeterministicPerSeedAndRound) {
  auto p1 = PermutationFromSeed(7, 0, 9);
  auto p2 = PermutationFromSeed(7, 0, 9);
  EXPECT_EQ(p1, p2);
  EXPECT_NE(PermutationFromSeed(7, 1, 9), p1);  // Round-dependent.
  EXPECT_NE(PermutationFromSeed(8, 0, 9), p1);  // Seed-dependent.
}

TEST(PermutationFromSeedTest, IsValidPermutation) {
  for (uint64_t round = 0; round < 5; ++round) {
    auto perm = PermutationFromSeed(42, round, 9);
    std::set<size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 9u);
  }
}

TEST(GroupUsersTest, BalancedContiguousChunks) {
  std::vector<size_t> perm = {8, 0, 3, 1, 7, 2, 6, 4, 5};
  auto groups = GroupUsers(perm, 3);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ((*groups)[0], (std::vector<size_t>{8, 0, 3}));
  EXPECT_EQ((*groups)[1], (std::vector<size_t>{1, 7, 2}));
  EXPECT_EQ((*groups)[2], (std::vector<size_t>{6, 4, 5}));
}

TEST(GroupUsersTest, RemainderSpreadsOverLeadingGroups) {
  std::vector<size_t> perm = {0, 1, 2, 3, 4, 5, 6};
  auto groups = GroupUsers(perm, 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)[0].size(), 3u);
  EXPECT_EQ((*groups)[1].size(), 2u);
  EXPECT_EQ((*groups)[2].size(), 2u);
}

TEST(GroupUsersTest, RejectsDegenerateCounts) {
  std::vector<size_t> perm = {0, 1, 2};
  EXPECT_FALSE(GroupUsers(perm, 0).ok());
  EXPECT_FALSE(GroupUsers(perm, 4).ok());
  auto singleton = GroupUsers(perm, 3);
  ASSERT_TRUE(singleton.ok());
  for (const auto& g : *singleton) EXPECT_EQ(g.size(), 1u);
}

TEST(GroupShapleyTest, HandComputedTwoGroups) {
  // 4 users, m=2, scalar "models". Groups fixed explicitly.
  // User locals: 1, 2, 3, 4. Groups {0,1} and {2,3}:
  //   W_1 = 1.5, W_2 = 3.5, u = scalar value, u(empty) = 0 (zero model).
  //   Coalitions: u({1}) = 1.5, u({2}) = 3.5, u({1,2}) = 2.5.
  //   V_1 = 1/2 [ (1.5 - 0) + (2.5 - 3.5) ] = 0.25
  //   V_2 = 1/2 [ (3.5 - 0) + (2.5 - 1.5) ] = 2.25
  // Each member gets V_j / 2.
  ScalarUtility utility;
  GroupShapley evaluator(4, {2, 7}, &utility);
  std::vector<std::vector<size_t>> groups = {{0, 1}, {2, 3}};
  std::vector<ml::Matrix> group_models = {Scalar(1.5), Scalar(3.5)};
  auto round = evaluator.EvaluateRoundFromGroupModels(groups, group_models);
  ASSERT_TRUE(round.ok());
  EXPECT_NEAR(round->group_values[0], 0.25, 1e-12);
  EXPECT_NEAR(round->group_values[1], 2.25, 1e-12);
  EXPECT_NEAR(round->user_values[0], 0.125, 1e-12);
  EXPECT_NEAR(round->user_values[1], 0.125, 1e-12);
  EXPECT_NEAR(round->user_values[2], 1.125, 1e-12);
  EXPECT_NEAR(round->user_values[3], 1.125, 1e-12);
}

TEST(GroupShapleyTest, EvaluateRoundBuildsGroupMeans) {
  ScalarUtility utility;
  GroupShapley evaluator(4, {2, 7}, &utility);
  std::vector<ml::Matrix> locals = {Scalar(1), Scalar(2), Scalar(3),
                                    Scalar(4)};
  auto round = evaluator.EvaluateRound(0, locals);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->groups.size(), 2u);
  // Each group model is the mean of its members' locals.
  for (size_t j = 0; j < 2; ++j) {
    double expected = 0;
    for (size_t i : round->groups[j]) expected += locals[i].At(0, 0);
    expected /= static_cast<double>(round->groups[j].size());
    EXPECT_NEAR(round->group_models[j].At(0, 0), expected, 1e-12);
  }
  // Global model is the size-weighted mean == overall user mean.
  EXPECT_NEAR(round->global_model.At(0, 0), 2.5, 1e-12);
}

TEST(GroupShapleyTest, MaxGroupsMatchesPerUserShapley) {
  // m = n: GroupSV degenerates to the native SV over the users' local
  // models (aggregated coalition models).
  ScalarUtility utility;
  const size_t n = 5;
  std::vector<ml::Matrix> locals;
  for (size_t i = 0; i < n; ++i) {
    locals.push_back(Scalar(static_cast<double>(i) + 1.0));
  }
  GroupShapley evaluator(n, {n, 13}, &utility);
  auto round = evaluator.EvaluateRound(0, locals);
  ASSERT_TRUE(round.ok());

  // Native SV with the same utility: u(S) = mean of member scalars.
  auto native = ExactShapley(n, [&](uint64_t mask) -> Result<double> {
    double sum = 0;
    int count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        sum += locals[i].At(0, 0);
        ++count;
      }
    }
    return count ? sum / count : 0.0;
  });
  ASSERT_TRUE(native.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(round->user_values[i], (*native)[i], 1e-9) << "user " << i;
  }
}

TEST(GroupShapleyTest, SingleGroupSplitsEvenly) {
  ScalarUtility utility;
  GroupShapley evaluator(4, {1, 3}, &utility);
  std::vector<ml::Matrix> locals = {Scalar(2), Scalar(4), Scalar(6),
                                    Scalar(8)};
  auto round = evaluator.EvaluateRound(0, locals);
  ASSERT_TRUE(round.ok());
  // One group: V_1 = u(grand) - u(empty) = 5.0; each user gets 1.25.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(round->user_values[i], 1.25, 1e-12);
  }
}

TEST(GroupShapleyTest, EfficiencyWithinRound) {
  // Sum of user SVs == u(grand coalition of groups) - u(empty).
  ScalarUtility utility;
  GroupShapley evaluator(6, {3, 5}, &utility);
  std::vector<ml::Matrix> locals;
  Xoshiro256 rng(3);
  for (size_t i = 0; i < 6; ++i) locals.push_back(Scalar(rng.NextDouble()));
  auto round = evaluator.EvaluateRound(2, locals);
  ASSERT_TRUE(round.ok());
  double sum = std::accumulate(round->user_values.begin(),
                               round->user_values.end(), 0.0);
  // Grand coalition model = unweighted mean of group models.
  ml::Matrix grand(1, 1);
  for (const auto& gm : round->group_models) {
    ASSERT_TRUE(grand.AddInPlace(gm).ok());
  }
  grand.Scale(1.0 / static_cast<double>(round->group_models.size()));
  EXPECT_NEAR(sum, grand.At(0, 0) - 0.0, 1e-9);
}

TEST(GroupShapleyTest, AccumulateSumsRounds) {
  ScalarUtility utility;
  GroupShapley evaluator(4, {2, 11}, &utility);
  std::vector<ml::Matrix> locals = {Scalar(1), Scalar(2), Scalar(3),
                                    Scalar(4)};
  std::vector<std::vector<ml::Matrix>> history = {locals, locals, locals};
  auto totals = evaluator.AccumulateOverRounds(history);
  ASSERT_TRUE(totals.ok());

  // Equals the sum of three independent round evaluations.
  std::vector<double> expected(4, 0.0);
  for (uint64_t r = 0; r < 3; ++r) {
    auto round = evaluator.EvaluateRound(r, locals);
    ASSERT_TRUE(round.ok());
    for (size_t i = 0; i < 4; ++i) expected[i] += round->user_values[i];
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR((*totals)[i], expected[i], 1e-12);
  }
}

TEST(GroupShapleyTest, RejectsBadInput) {
  ScalarUtility utility;
  GroupShapley evaluator(4, {2, 1}, &utility);
  EXPECT_FALSE(evaluator.EvaluateRound(0, {Scalar(1)}).ok());
  EXPECT_FALSE(evaluator.AccumulateOverRounds({}).ok());
  EXPECT_FALSE(
      evaluator.EvaluateRoundFromGroupModels({{0, 1}}, {}).ok());
}

}  // namespace
}  // namespace bcfl::shapley
