#include "crypto/dh.h"

#include <gtest/gtest.h>

namespace bcfl::crypto {
namespace {

TEST(GroupParamsTest, DefaultIs2To255Minus19) {
  GroupParams params = GroupParams::Default();
  EXPECT_EQ(params.p.ToHex(),
            "7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed");
  EXPECT_EQ(params.g, UInt256(2));
}

TEST(DiffieHellmanTest, KeyPairHasValidRange) {
  DiffieHellman dh;
  Xoshiro256 rng(1);
  DhKeyPair pair = dh.GenerateKeyPair(&rng);
  EXPECT_FALSE(pair.private_key.IsZero());
  EXPECT_LT(pair.private_key, dh.params().p);
  EXPECT_FALSE(pair.public_key.IsZero());
  EXPECT_LT(pair.public_key, dh.params().p);
}

class DhAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DhAgreementTest, BothSidesDeriveSameSecret) {
  DiffieHellman dh;
  Xoshiro256 rng(GetParam());
  DhKeyPair alice = dh.GenerateKeyPair(&rng);
  DhKeyPair bob = dh.GenerateKeyPair(&rng);
  UInt256 alice_view = dh.ComputeShared(alice.private_key, bob.public_key);
  UInt256 bob_view = dh.ComputeShared(bob.private_key, alice.public_key);
  EXPECT_EQ(alice_view, bob_view);
  EXPECT_FALSE(alice_view.IsZero());
}

TEST_P(DhAgreementTest, ThirdPartyDerivesDifferentSecret) {
  DiffieHellman dh;
  Xoshiro256 rng(GetParam() + 100);
  DhKeyPair alice = dh.GenerateKeyPair(&rng);
  DhKeyPair bob = dh.GenerateKeyPair(&rng);
  DhKeyPair eve = dh.GenerateKeyPair(&rng);
  UInt256 ab = dh.ComputeShared(alice.private_key, bob.public_key);
  UInt256 eb = dh.ComputeShared(eve.private_key, bob.public_key);
  EXPECT_NE(ab, eb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhAgreementTest,
                         ::testing::Values(1, 7, 42, 1000));

TEST(DiffieHellmanTest, DeterministicGivenRngSeed) {
  DiffieHellman dh;
  Xoshiro256 rng1(5), rng2(5);
  DhKeyPair a = dh.GenerateKeyPair(&rng1);
  DhKeyPair b = dh.GenerateKeyPair(&rng2);
  EXPECT_EQ(a.private_key, b.private_key);
  EXPECT_EQ(a.public_key, b.public_key);
}

TEST(DiffieHellmanTest, DeriveKeyLabelSeparation) {
  UInt256 shared(123456789ULL);
  auto k1 = DiffieHellman::DeriveKey(shared, "mask");
  auto k2 = DiffieHellman::DeriveKey(shared, "cipher");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, DiffieHellman::DeriveKey(shared, "mask"));
}

TEST(DiffieHellmanTest, DeriveKeyDependsOnSecret) {
  auto k1 = DiffieHellman::DeriveKey(UInt256(1), "mask");
  auto k2 = DiffieHellman::DeriveKey(UInt256(2), "mask");
  EXPECT_NE(k1, k2);
}

TEST(RandomInRangeTest, StaysWithinBounds) {
  Xoshiro256 rng(9);
  UInt256 low(100);
  UInt256 high(200);
  for (int i = 0; i < 200; ++i) {
    UInt256 v = RandomInRange(&rng, low, high);
    EXPECT_GE(v, low);
    EXPECT_LE(v, high);
  }
}

TEST(RandomInRangeTest, DegenerateRange) {
  Xoshiro256 rng(11);
  UInt256 point(42);
  EXPECT_EQ(RandomInRange(&rng, point, point), point);
}

}  // namespace
}  // namespace bcfl::crypto
