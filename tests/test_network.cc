#include "net/network.h"

#include <gtest/gtest.h>

namespace bcfl::net {
namespace {

TEST(NetworkTest, RegisterRejectsDuplicatesAndNullHandlers) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_TRUE(
      network.RegisterNode(1, [](const Message&) {}).IsAlreadyExists());
  EXPECT_TRUE(network.RegisterNode(2, nullptr).IsInvalidArgument());
}

TEST(NetworkTest, SendToUnknownNodeFails) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_TRUE(network.Send(1, 99, {1, 2, 3}).IsNotFound());
}

TEST(NetworkTest, DeliversPayloadAndMetadata) {
  SimulatedNetwork network;
  Message received;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(2, [&](const Message& m) { received = m; })
                  .ok());
  ASSERT_TRUE(network.Send(1, 2, {9, 8, 7}).ok());
  EXPECT_EQ(network.DeliverAll(), 1u);
  EXPECT_EQ(received.from, 1u);
  EXPECT_EQ(received.to, 2u);
  EXPECT_EQ(received.payload, (Bytes{9, 8, 7}));
}

TEST(NetworkTest, DeliveryOrderFollowsLatency) {
  NetworkConfig config;
  config.min_latency_us = 1;
  config.max_latency_us = 10000;
  config.seed = 5;
  SimulatedNetwork network(config);
  std::vector<uint64_t> arrival_times;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  arrival_times.push_back(m.deliver_at_us);
                                })
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(network.Send(0, 1, {static_cast<uint8_t>(i)}).ok());
  }
  network.DeliverAll();
  ASSERT_EQ(arrival_times.size(), 50u);
  EXPECT_TRUE(std::is_sorted(arrival_times.begin(), arrival_times.end()));
}

TEST(NetworkTest, LatencyWithinConfiguredBounds) {
  NetworkConfig config;
  config.min_latency_us = 100;
  config.max_latency_us = 200;
  SimulatedNetwork network(config);
  std::vector<uint64_t> deliveries;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  deliveries.push_back(m.deliver_at_us);
                                })
                  .ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  for (uint64_t t : deliveries) {
    EXPECT_GE(t, 100u);
    EXPECT_LE(t, 200u);
  }
}

TEST(NetworkTest, BroadcastReachesAllButSender) {
  SimulatedNetwork network;
  std::map<NodeId, int> counts;
  for (NodeId id = 0; id < 4; ++id) {
    ASSERT_TRUE(
        network.RegisterNode(id, [&, id](const Message&) { counts[id]++; })
            .ok());
  }
  ASSERT_TRUE(network.Broadcast(2, {1}).ok());
  network.DeliverAll();
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
}

TEST(NetworkTest, HandlersCanSendDuringDrain) {
  // Ping-pong: node 1 replies to node 0's message within the same drain.
  SimulatedNetwork network;
  int pongs = 0;
  ASSERT_TRUE(
      network.RegisterNode(0, [&](const Message&) { pongs++; }).ok());
  SimulatedNetwork* net = &network;
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [net](const Message& m) {
                                  (void)net->Send(1, m.from, {0xff});
                                })
                  .ok());
  ASSERT_TRUE(network.Send(0, 1, {1}).ok());
  size_t delivered = network.DeliverAll();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(pongs, 1);
}

TEST(NetworkTest, DropProbabilityLosesMessages) {
  NetworkConfig config;
  config.drop_probability = 0.5;
  config.seed = 7;
  SimulatedNetwork network(config);
  int received = 0;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(
      network.RegisterNode(1, [&](const Message&) { received++; }).ok());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(network.stats().messages_dropped,
            1000u - static_cast<uint64_t>(received));
}

TEST(NetworkTest, StatsAccumulate) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  ASSERT_TRUE(network.Send(0, 1, Bytes(100)).ok());
  ASSERT_TRUE(network.Send(1, 0, Bytes(50)).ok());
  network.DeliverAll();
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().messages_delivered, 2u);
  EXPECT_EQ(network.stats().bytes_sent, 150u);
}

TEST(NetworkTest, ClockAdvancesMonotonically) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_EQ(network.clock().NowMicros(), 0u);
  ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  uint64_t after_first = network.clock().NowMicros();
  EXPECT_GT(after_first, 0u);
  ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  EXPECT_GT(network.clock().NowMicros(), after_first);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    NetworkConfig config;
    config.seed = 11;
    SimulatedNetwork network(config);
    std::vector<uint64_t> times;
    (void)network.RegisterNode(0, [](const Message&) {});
    (void)network.RegisterNode(1, [&](const Message& m) {
      times.push_back(m.deliver_at_us);
    });
    for (int i = 0; i < 20; ++i) (void)network.Send(0, 1, {});
    network.DeliverAll();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bcfl::net
