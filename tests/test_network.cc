#include "net/network.h"

#include <gtest/gtest.h>

namespace bcfl::net {
namespace {

TEST(NetworkTest, RegisterRejectsDuplicatesAndNullHandlers) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_TRUE(
      network.RegisterNode(1, [](const Message&) {}).IsAlreadyExists());
  EXPECT_TRUE(network.RegisterNode(2, nullptr).IsInvalidArgument());
}

TEST(NetworkTest, SendToUnknownNodeFails) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_TRUE(network.Send(1, 99, {1, 2, 3}).IsNotFound());
}

TEST(NetworkTest, DeliversPayloadAndMetadata) {
  SimulatedNetwork network;
  Message received;
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(2, [&](const Message& m) { received = m; })
                  .ok());
  ASSERT_TRUE(network.Send(1, 2, {9, 8, 7}).ok());
  EXPECT_EQ(network.DeliverAll(), 1u);
  EXPECT_EQ(received.from, 1u);
  EXPECT_EQ(received.to, 2u);
  EXPECT_EQ(received.payload, (Bytes{9, 8, 7}));
}

TEST(NetworkTest, DeliveryOrderFollowsLatency) {
  NetworkConfig config;
  config.min_latency_us = 1;
  config.max_latency_us = 10000;
  config.seed = 5;
  SimulatedNetwork network(config);
  std::vector<uint64_t> arrival_times;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  arrival_times.push_back(m.deliver_at_us);
                                })
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(network.Send(0, 1, {static_cast<uint8_t>(i)}).ok());
  }
  network.DeliverAll();
  ASSERT_EQ(arrival_times.size(), 50u);
  EXPECT_TRUE(std::is_sorted(arrival_times.begin(), arrival_times.end()));
}

TEST(NetworkTest, LatencyWithinConfiguredBounds) {
  NetworkConfig config;
  config.min_latency_us = 100;
  config.max_latency_us = 200;
  SimulatedNetwork network(config);
  std::vector<uint64_t> deliveries;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  deliveries.push_back(m.deliver_at_us);
                                })
                  .ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  for (uint64_t t : deliveries) {
    EXPECT_GE(t, 100u);
    EXPECT_LE(t, 200u);
  }
}

TEST(NetworkTest, BroadcastReachesAllButSender) {
  SimulatedNetwork network;
  std::map<NodeId, int> counts;
  for (NodeId id = 0; id < 4; ++id) {
    ASSERT_TRUE(
        network.RegisterNode(id, [&, id](const Message&) { counts[id]++; })
            .ok());
  }
  ASSERT_TRUE(network.Broadcast(2, {1}).ok());
  network.DeliverAll();
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
}

TEST(NetworkTest, HandlersCanSendDuringDrain) {
  // Ping-pong: node 1 replies to node 0's message within the same drain.
  SimulatedNetwork network;
  int pongs = 0;
  ASSERT_TRUE(
      network.RegisterNode(0, [&](const Message&) { pongs++; }).ok());
  SimulatedNetwork* net = &network;
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [net](const Message& m) {
                                  (void)net->Send(1, m.from, {0xff});
                                })
                  .ok());
  ASSERT_TRUE(network.Send(0, 1, {1}).ok());
  size_t delivered = network.DeliverAll();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(pongs, 1);
}

TEST(NetworkTest, DropProbabilityLosesMessages) {
  NetworkConfig config;
  config.drop_probability = 0.5;
  config.seed = 7;
  SimulatedNetwork network(config);
  int received = 0;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(
      network.RegisterNode(1, [&](const Message&) { received++; }).ok());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);
  EXPECT_EQ(network.stats().messages_dropped,
            1000u - static_cast<uint64_t>(received));
}

TEST(NetworkTest, StatsAccumulate) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  ASSERT_TRUE(network.Send(0, 1, Bytes(100)).ok());
  ASSERT_TRUE(network.Send(1, 0, Bytes(50)).ok());
  network.DeliverAll();
  EXPECT_EQ(network.stats().messages_sent, 2u);
  EXPECT_EQ(network.stats().messages_delivered, 2u);
  EXPECT_EQ(network.stats().bytes_sent, 150u);
}

TEST(NetworkTest, ClockAdvancesMonotonically) {
  SimulatedNetwork network;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network.RegisterNode(1, [](const Message&) {}).ok());
  EXPECT_EQ(network.clock().NowMicros(), 0u);
  ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  uint64_t after_first = network.clock().NowMicros();
  EXPECT_GT(after_first, 0u);
  ASSERT_TRUE(network.Send(0, 1, {}).ok());
  network.DeliverAll();
  EXPECT_GT(network.clock().NowMicros(), after_first);
}

TEST(NetworkTest, FaultFilterDropsSelectedMessages) {
  SimulatedNetwork network;
  int received = 0;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(
      network.RegisterNode(1, [&](const Message&) { received++; }).ok());
  network.set_fault_filter([](const Message& m) {
    FaultDecision decision;
    decision.drop = m.payload.size() == 1;
    return decision;
  });
  ASSERT_TRUE(network.Send(0, 1, {7}).ok());        // Dropped.
  ASSERT_TRUE(network.Send(0, 1, {7, 8}).ok());     // Delivered.
  network.DeliverAll();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(network.stats().messages_dropped, 1u);
}

TEST(NetworkTest, FaultFilterDuplicatesAreDeliveredAndCounted) {
  SimulatedNetwork network;
  int received = 0;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(
      network.RegisterNode(1, [&](const Message&) { received++; }).ok());
  network.set_fault_filter([](const Message&) {
    FaultDecision decision;
    decision.duplicates = 2;
    return decision;
  });
  ASSERT_TRUE(network.Send(0, 1, {1}).ok());
  network.DeliverAll();
  EXPECT_EQ(received, 3);  // Original + two injected copies.
  EXPECT_EQ(network.stats().messages_duplicated, 2u);
  EXPECT_EQ(network.stats().messages_delivered, 3u);
}

TEST(NetworkTest, InjectedDelayInvertsOrderAndCountsReorders) {
  NetworkConfig config;
  config.min_latency_us = 100;
  config.max_latency_us = 200;
  SimulatedNetwork network(config);
  std::vector<size_t> arrival_sizes;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  arrival_sizes.push_back(m.payload.size());
                                })
                  .ok());
  // The first (1-byte) message is held back far past the second.
  network.set_fault_filter([](const Message& m) {
    FaultDecision decision;
    if (m.payload.size() == 1) decision.extra_delay_us = 100'000;
    return decision;
  });
  ASSERT_TRUE(network.Send(0, 1, {9}).ok());
  ASSERT_TRUE(network.Send(0, 1, {9, 9}).ok());
  network.DeliverAll();
  ASSERT_EQ(arrival_sizes.size(), 2u);
  EXPECT_EQ(arrival_sizes[0], 2u);  // Later send arrives first.
  EXPECT_EQ(network.stats().messages_reordered, 1u);
}

TEST(NetworkTest, DeliveredPerNodeTracksDestinations) {
  SimulatedNetwork network;
  for (NodeId id = 0; id < 3; ++id) {
    ASSERT_TRUE(network.RegisterNode(id, [](const Message&) {}).ok());
  }
  ASSERT_TRUE(network.Send(0, 1, {}).ok());
  ASSERT_TRUE(network.Send(0, 2, {}).ok());
  ASSERT_TRUE(network.Send(1, 2, {}).ok());
  network.DeliverAll();
  const auto& per_node = network.stats().delivered_per_node;
  EXPECT_EQ(per_node.count(0), 0u);
  EXPECT_EQ(per_node.at(1), 1u);
  EXPECT_EQ(per_node.at(2), 2u);
}

TEST(NetworkTest, PerPairDropStreamsAreIndependent) {
  // Same sender, two destinations: the loss patterns must differ, so
  // broadcast loss cannot correlate with roster iteration order.
  NetworkConfig config;
  config.drop_probability = 0.5;
  config.seed = 13;
  SimulatedNetwork network(config);
  std::vector<int> got1, got2;
  ASSERT_TRUE(network.RegisterNode(0, [](const Message&) {}).ok());
  ASSERT_TRUE(network
                  .RegisterNode(1,
                                [&](const Message& m) {
                                  got1.push_back(m.payload[0]);
                                })
                  .ok());
  ASSERT_TRUE(network
                  .RegisterNode(2,
                                [&](const Message& m) {
                                  got2.push_back(m.payload[0]);
                                })
                  .ok());
  for (uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(network.Send(0, 1, {i}).ok());
    ASSERT_TRUE(network.Send(0, 2, {i}).ok());
  }
  network.DeliverAll();
  EXPECT_GT(got1.size(), 30u);
  EXPECT_GT(got2.size(), 30u);
  EXPECT_NE(got1, got2);  // Distinct per-pair streams.
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    NetworkConfig config;
    config.seed = 11;
    SimulatedNetwork network(config);
    std::vector<uint64_t> times;
    (void)network.RegisterNode(0, [](const Message&) {});
    (void)network.RegisterNode(1, [&](const Message& m) {
      times.push_back(m.deliver_at_us);
    });
    for (int i = 0; i < 20; ++i) (void)network.Send(0, 1, {});
    network.DeliverAll();
    return times;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bcfl::net
