#include "privacy/leakage.h"

#include <gtest/gtest.h>

#include "data/digits.h"
#include "ml/logistic_regression.h"
#include "secureagg/fixed_point.h"
#include "secureagg/mask.h"

namespace bcfl::privacy {
namespace {

/// One-step local update from the zero model on `data`; returns
/// (w_before, w_after, lr, l2).
struct Update {
  ml::Matrix before;
  ml::Matrix after;
  double lr;
  double l2;
};

Update OneStepUpdate(const ml::Dataset& data) {
  ml::LogisticRegressionConfig config;
  config.learning_rate = 0.5;
  config.l2_penalty = 0.0;  // Zero start: the reg term vanishes anyway.
  ml::LogisticRegression model(data.num_features(), data.num_classes(),
                               config);
  Update u;
  u.before = model.weights();
  EXPECT_TRUE(model.TrainEpochs(data, 1).ok());
  u.after = model.weights();
  u.lr = config.learning_rate;
  u.l2 = config.l2_penalty;
  return u;
}

TEST(LeakageTest, RecoversSingleVictimExample) {
  // A data owner with ONE example: the update's class column IS the
  // example (up to scale) — the strongest form of the [6] attack.
  auto tpl = data::DigitsGenerator::Template(7).value();
  ml::Matrix x(1, 64);
  for (size_t f = 0; f < 64; ++f) x.At(0, f) = tpl[f];
  ml::Dataset victim(std::move(x), {7}, 10);

  Update u = OneStepUpdate(victim);
  auto g = RecoverClassGradient(u.before, u.after, u.lr, u.l2);
  ASSERT_TRUE(g.ok());
  auto images = ExtractClassImages(*g);
  ASSERT_EQ(images.size(), 10u);

  // The victim's class column correlates almost perfectly with the
  // private example; other classes' columns are its negative (scaled).
  auto corr = ImageCorrelation(images[7], tpl);
  ASSERT_TRUE(corr.ok());
  EXPECT_GT(*corr, 0.99);
}

TEST(LeakageTest, RecoversClassMeansFromBatchUpdate) {
  // A full local dataset: each class column approximates that class's
  // mean image (minus the dataset mean).
  data::DigitsConfig config;
  config.num_instances = 300;
  config.seed = 5;
  ml::Dataset data = data::DigitsGenerator(config).Generate();

  Update u = OneStepUpdate(data);
  auto g = RecoverClassGradient(u.before, u.after, u.lr, u.l2);
  ASSERT_TRUE(g.ok());
  auto images = ExtractClassImages(*g);

  // The theory: from W0 = 0 (uniform softmax) and one full-batch step,
  // column c equals (n_c/n) * mean_c - (1/C) * overall_mean — the
  // *empirical* class mean minus the dataset mean, exactly. Compute
  // those private quantities from the victim's data and verify the
  // attacker's reconstruction recovers each almost perfectly.
  std::vector<std::vector<double>> deviations(10,
                                              std::vector<double>(64, 0.0));
  std::vector<double> overall(64, 0.0);
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    size_t c = static_cast<size_t>(data.labels()[i]);
    counts[c]++;
    for (size_t f = 0; f < 64; ++f) {
      deviations[c][f] += data.features().At(i, f);
      overall[f] += data.features().At(i, f) /
                    static_cast<double>(data.num_examples());
    }
  }
  for (size_t c = 0; c < 10; ++c) {
    for (size_t f = 0; f < 64; ++f) {
      deviations[c][f] =
          deviations[c][f] / static_cast<double>(counts[c]) - overall[f];
    }
  }

  for (size_t c = 0; c < 10; ++c) {
    double own = *ImageCorrelation(images[c], deviations[c]);
    EXPECT_GT(own, 0.95) << "class " << c;
    for (size_t other = 0; other < 10; ++other) {
      if (other == c) continue;
      double cross = *ImageCorrelation(images[c], deviations[other]);
      EXPECT_GT(own, cross) << "class " << c << " vs " << other;
    }
  }
}

TEST(LeakageTest, MaskedUpdateDefeatsTheAttack) {
  // The same update, observed as secure aggregation would expose it to
  // a curious on-chain observer (one masked submission out of a pair):
  // decode and attack — the reconstruction must carry no signal.
  auto tpl = data::DigitsGenerator::Template(3).value();
  ml::Matrix x(1, 64);
  for (size_t f = 0; f < 64; ++f) x.At(0, f) = tpl[f];
  ml::Dataset victim(std::move(x), {3}, 10);
  Update u = OneStepUpdate(victim);

  // Mask with a pairwise mask (what actually sits on chain).
  secureagg::FixedPointCodec codec(24);
  auto encoded = codec.EncodeMatrix(u.after);
  std::array<uint8_t, 32> pair_key{};
  pair_key[0] = 42;
  auto mask = secureagg::ExpandMask(pair_key, 0, encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) encoded[i] += mask[i];
  auto masked_after =
      codec.DecodeMatrix(encoded, u.after.rows(), u.after.cols()).value();

  auto g = RecoverClassGradient(u.before, masked_after, u.lr, u.l2);
  ASSERT_TRUE(g.ok());
  auto images = ExtractClassImages(*g);
  auto corr = ImageCorrelation(images[3], tpl);
  ASSERT_TRUE(corr.ok());
  EXPECT_LT(std::abs(*corr), 0.3);
}

TEST(LeakageTest, RecoverValidatesArguments) {
  ml::Matrix a(3, 2), b(2, 3);
  EXPECT_FALSE(RecoverClassGradient(a, b, 0.1, 0.0).ok());
  EXPECT_FALSE(RecoverClassGradient(a, a, 0.0, 0.0).ok());
}

TEST(LeakageTest, ExtractHandlesDegenerateShapes) {
  EXPECT_TRUE(ExtractClassImages(ml::Matrix(1, 5)).empty());
  auto images = ExtractClassImages(ml::Matrix(3, 2));
  ASSERT_EQ(images.size(), 2u);
  EXPECT_EQ(images[0].size(), 2u);
}

TEST(ImageCorrelationTest, Basics) {
  EXPECT_NEAR(*ImageCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(*ImageCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_FALSE(ImageCorrelation({}, {}).ok());
  EXPECT_FALSE(ImageCorrelation({1, 1}, {1, 2}).ok());  // Flat image.
}

}  // namespace
}  // namespace bcfl::privacy
