#include "fl/robust.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bcfl::fl {
namespace {

ml::Matrix Fill(double v) {
  ml::Matrix m(2, 2, v);
  return m;
}

std::vector<ml::Matrix> HonestPlusOutlier(double outlier_value) {
  // Four honest updates near 1.0 plus one wild outlier.
  return {Fill(0.9), Fill(1.0), Fill(1.1), Fill(1.0), Fill(outlier_value)};
}

TEST(MedianTest, OddCountPicksMiddle) {
  auto median = CoordinateMedian({Fill(1), Fill(5), Fill(3)});
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ(median->At(0, 0), 3.0);
}

TEST(MedianTest, EvenCountAveragesMiddlePair) {
  auto median = CoordinateMedian({Fill(1), Fill(2), Fill(8), Fill(9)});
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ(median->At(0, 0), 5.0);
}

TEST(MedianTest, IgnoresWildOutlier) {
  auto median = CoordinateMedian(HonestPlusOutlier(1e9));
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(median->At(0, 0), 1.0, 0.01);
}

TEST(MedianTest, WorksPerCoordinate) {
  ml::Matrix a(1, 2), b(1, 2), c(1, 2);
  a.At(0, 0) = 1; a.At(0, 1) = 30;
  b.At(0, 0) = 2; b.At(0, 1) = 10;
  c.At(0, 0) = 9; c.At(0, 1) = 20;
  auto median = CoordinateMedian({a, b, c});
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ(median->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(median->At(0, 1), 20.0);
}

TEST(TrimmedMeanTest, DropsExtremes) {
  auto mean = TrimmedMean(HonestPlusOutlier(1e9), 1);
  ASSERT_TRUE(mean.ok());
  // Drops 1e9 (top) and 0.9 (bottom): mean of {1.0, 1.0, 1.1}.
  EXPECT_NEAR(mean->At(0, 0), (1.0 + 1.0 + 1.1) / 3, 1e-12);
}

TEST(TrimmedMeanTest, ZeroTrimIsPlainMean) {
  auto mean = TrimmedMean({Fill(1), Fill(2), Fill(3)}, 0);
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean->At(0, 0), 2.0);
}

TEST(TrimmedMeanTest, RejectsOverTrim) {
  EXPECT_FALSE(TrimmedMean({Fill(1), Fill(2)}, 1).ok());
}

TEST(KrumTest, SelectsUpdateSurroundedByPeers) {
  auto chosen = Krum(HonestPlusOutlier(100.0), /*byzantine=*/1);
  ASSERT_TRUE(chosen.ok());
  EXPECT_NEAR(chosen->At(0, 0), 1.0, 0.15);  // One of the honest ones.
}

TEST(KrumTest, OutlierHasWorstScore) {
  auto scores = KrumScores(HonestPlusOutlier(100.0), 1);
  ASSERT_TRUE(scores.ok());
  size_t worst = 0;
  for (size_t i = 1; i < scores->size(); ++i) {
    if ((*scores)[i] > (*scores)[worst]) worst = i;
  }
  EXPECT_EQ(worst, 4u);  // The outlier.
}

TEST(KrumTest, NeedsEnoughUpdates) {
  EXPECT_FALSE(Krum({Fill(1), Fill(2), Fill(3)}, 1).ok());  // Needs 4.
  EXPECT_TRUE(Krum({Fill(1), Fill(2), Fill(3), Fill(4)}, 1).ok());
}

TEST(MultiKrumTest, SelectAveragesBestUpdates) {
  auto avg = MultiKrum(HonestPlusOutlier(100.0), 1, 3);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->At(0, 0), 1.0, 0.1);
  EXPECT_FALSE(MultiKrum(HonestPlusOutlier(100.0), 1, 0).ok());
  EXPECT_FALSE(MultiKrum(HonestPlusOutlier(100.0), 1, 9).ok());
}

TEST(RobustAggTest, AllRejectEmptyOrMismatched) {
  EXPECT_FALSE(CoordinateMedian({}).ok());
  EXPECT_FALSE(TrimmedMean({}, 0).ok());
  std::vector<ml::Matrix> mismatched = {ml::Matrix(1, 2), ml::Matrix(2, 1)};
  EXPECT_FALSE(CoordinateMedian(mismatched).ok());
  EXPECT_FALSE(TrimmedMean(mismatched, 0).ok());
}

class RobustnessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessPropertyTest, RobustRulesBeatMeanUnderAttack) {
  // Honest updates ~ N(mu, 0.1); one attacker at mu + 50. The robust
  // aggregates must land far closer to mu than the plain mean does.
  Xoshiro256 rng(GetParam());
  const double mu = 2.0;
  std::vector<ml::Matrix> updates;
  for (int i = 0; i < 6; ++i) {
    ml::Matrix u(3, 3);
    for (double& v : u.mutable_data()) v = rng.NextGaussian(mu, 0.1);
    updates.push_back(std::move(u));
  }
  updates.push_back(ml::Matrix(3, 3, mu + 50.0));  // Attacker.

  auto mean = ml::MeanOfMatrices(updates);
  auto median = CoordinateMedian(updates);
  auto trimmed = TrimmedMean(updates, 1);
  auto krum = Krum(updates, 1);
  ASSERT_TRUE(mean.ok());
  ASSERT_TRUE(median.ok());
  ASSERT_TRUE(trimmed.ok());
  ASSERT_TRUE(krum.ok());

  auto error = [&](const ml::Matrix& m) {
    ml::Matrix diff = m;
    ml::Matrix target(3, 3, mu);
    EXPECT_TRUE(diff.SubInPlace(target).ok());
    return diff.FrobeniusNorm();
  };
  double mean_err = error(*mean);
  EXPECT_GT(mean_err, 10.0);  // Mean is dragged by the attacker.
  EXPECT_LT(error(*median), 1.0);
  EXPECT_LT(error(*trimmed), 1.0);
  EXPECT_LT(error(*krum), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessPropertyTest,
                         ::testing::Values(1, 22, 333));

}  // namespace
}  // namespace bcfl::fl
