#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "test.counter");
}

TEST(CounterTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("shared");
  Counter& b = registry.GetCounter("shared");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
}

TEST(CounterTest, ConcurrentAddsUnderThreadPool) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("concurrent");
  ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(kIters, [&](size_t) { c.Add(); }, /*grain=*/16);
  EXPECT_EQ(c.Value(), kIters);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("acc");
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(0.5);
  g.Set(0.875);
  EXPECT_DOUBLE_EQ(g.Value(), 0.875);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), std::numeric_limits<double>::infinity());
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(60.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 66.0);
  EXPECT_DOUBLE_EQ(h.Min(), 2.0);
  EXPECT_DOUBLE_EQ(h.Max(), 60.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 22.0);
}

TEST(HistogramTest, BucketAssignmentIncludingOverflow) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("buckets", {1.0, 10.0});
  h.Observe(0.5);   // <= 1 -> bucket 0.
  h.Observe(1.0);   // boundary is inclusive -> bucket 0.
  h.Observe(5.0);   // bucket 1.
  h.Observe(999.0); // overflow bucket.
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(HistogramTest, PercentileOrderingIsSane) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("pct");  // Default latency grid.
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  double p50 = h.Percentile(0.5);
  double p90 = h.Percentile(0.9);
  double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, h.bounds().back());
}

TEST(HistogramTest, ConcurrentObservesUnderThreadPool) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("conc", {10.0, 100.0, 1000.0});
  ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(kIters,
                   [&](size_t i) { h.Observe(static_cast<double>(i % 50)); },
                   /*grain=*/16);
  EXPECT_EQ(h.Count(), kIters);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 49.0);
}

TEST(HistogramTest, FirstRegistrationBoundsWin) {
  MetricsRegistry registry;
  Histogram& a = registry.GetHistogram("bounds", {1.0, 2.0});
  Histogram& b = registry.GetHistogram("bounds", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Gauge& g = registry.GetGauge("g");
  Histogram& h = registry.GetHistogram("h", {10.0});
  c.Add(5);
  g.Set(1.5);
  h.Observe(3.0);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), std::numeric_limits<double>::infinity());
  // Same instrument objects still answer for the names.
  EXPECT_EQ(&registry.GetCounter("c"), &c);
}

TEST(MetricsRegistryTest, DisabledUpdatesAreDropped) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("gated");
  Histogram& h = registry.GetHistogram("gated_h", {10.0});
  MetricsRegistry::set_enabled(false);
  c.Add(100);
  h.Observe(1.0);
  MetricsRegistry::set_enabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsRegistryTest, JsonExportContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("chain.blocks").Add(3);
  registry.GetGauge("fl.acc").Set(0.75);
  Histogram& h = registry.GetHistogram("lat_us", {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(50.0);
  std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"chain.blocks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fl.acc\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistryTest, EmptyHistogramExportOmitsMinMax) {
  MetricsRegistry registry;
  registry.GetHistogram("never_hit", {1.0});
  std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("\"never_hit\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ScopedLatencyTest, RecordsOneObservation) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("scoped_us");
  { ScopedLatency latency(h); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Max(), 0.0);
}

TEST(ExporterTest, WritesBothArtifacts) {
  MetricsRegistry registry;
  registry.GetCounter("x").Add(2);
  Tracer tracer;
  { ScopedSpan span(tracer, "phase", "test"); }
  ExportPaths paths;
  paths.metrics_json = "test_metrics_out.json";
  paths.trace_json = "test_trace_out.json";
  Status st = ExportTo(registry, tracer, paths);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::ifstream metrics(paths.metrics_json);
  ASSERT_TRUE(metrics.good());
  std::stringstream m;
  m << metrics.rdbuf();
  EXPECT_NE(m.str().find("\"x\":2"), std::string::npos);

  std::ifstream trace(paths.trace_json);
  ASSERT_TRUE(trace.good());
  std::stringstream t;
  t << trace.rdbuf();
  EXPECT_NE(t.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.str().find("\"phase\""), std::string::npos);

  std::remove(paths.metrics_json.c_str());
  std::remove(paths.trace_json.c_str());
}

TEST(ExporterTest, UnwritablePathFails) {
  MetricsRegistry registry;
  Tracer tracer;
  ExportPaths paths;
  paths.metrics_json = "/nonexistent-dir/metrics.json";
  Status st = ExportTo(registry, tracer, paths);
  EXPECT_FALSE(st.ok());
}

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(SnapshotTest, CapturesEveryInstrumentSelfConsistently) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(11);
  registry.GetGauge("g").Set(0.25);
  Histogram& h = registry.GetHistogram("h_us", {1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 50.0, 500.0}) h.Observe(v);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 11u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g"), 0.25);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hs = snapshot.histograms[0];
  EXPECT_EQ(hs.name, "h_us");
  ASSERT_EQ(hs.bucket_counts.size(), 4u);
  // The contract: count is re-derived from the captured buckets, so the
  // snapshot is internally consistent whatever the live shards did in
  // between.
  uint64_t bucket_total = 0;
  for (uint64_t b : hs.bucket_counts) bucket_total += b;
  EXPECT_EQ(hs.count, bucket_total);
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 555.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 500.0);
  EXPECT_LE(hs.p50, hs.p90);
  EXPECT_LE(hs.p90, hs.p99);
  EXPECT_GT(hs.p50, 0.0);
}

TEST(SnapshotTest, EmptyHistogramHasZeroQuantiles) {
  MetricsRegistry registry;
  registry.GetHistogram("idle_us", {1.0});
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.histograms[0].p99, 0.0);
}

// The memory-order contract under fire (run under TSan via
// scripts/tsan_check.sh): writers hammer relaxed Add/Observe while the
// main thread alternates Snapshot and Reset. Every snapshot must be
// *internally* consistent — bucket-derived count, quantiles inside the
// bucket range — even though its totals race the writers by design.
TEST(SnapshotTest, StressSnapshotAndResetDuringConcurrentAdds) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("stress.c");
  Histogram& h = registry.GetHistogram("stress.h_us", {1.0, 10.0, 100.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.Add();
        h.Observe(static_cast<double>((i * 7 + t) % 200));
        ++i;
      }
    });
  }
  for (int iter = 0; iter < 200; ++iter) {
    MetricsSnapshot snapshot = registry.Snapshot();
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    const auto& hs = snapshot.histograms[0];
    uint64_t bucket_total = 0;
    for (uint64_t b : hs.bucket_counts) bucket_total += b;
    ASSERT_EQ(hs.count, bucket_total);
    if (hs.count > 0) {
      ASSERT_GE(hs.p99, hs.p50);
      ASSERT_LE(hs.p99, 200.0);
    }
    if (iter % 10 == 9) registry.Reset();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  // Still alive and counting after the churn.
  const uint64_t before = c.Value();
  c.Add();
  EXPECT_EQ(c.Value(), before + 1);
}

}  // namespace
}  // namespace bcfl::obs
