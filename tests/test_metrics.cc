#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bcfl::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  EXPECT_EQ(c.name(), "test.counter");
}

TEST(CounterTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("shared");
  Counter& b = registry.GetCounter("shared");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
}

TEST(CounterTest, ConcurrentAddsUnderThreadPool) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("concurrent");
  ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(kIters, [&](size_t) { c.Add(); }, /*grain=*/16);
  EXPECT_EQ(c.Value(), kIters);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("acc");
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(0.5);
  g.Set(0.875);
  EXPECT_DOUBLE_EQ(g.Value(), 0.875);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat", {1.0, 10.0, 100.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), std::numeric_limits<double>::infinity());
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(60.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 66.0);
  EXPECT_DOUBLE_EQ(h.Min(), 2.0);
  EXPECT_DOUBLE_EQ(h.Max(), 60.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 22.0);
}

TEST(HistogramTest, BucketAssignmentIncludingOverflow) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("buckets", {1.0, 10.0});
  h.Observe(0.5);   // <= 1 -> bucket 0.
  h.Observe(1.0);   // boundary is inclusive -> bucket 0.
  h.Observe(5.0);   // bucket 1.
  h.Observe(999.0); // overflow bucket.
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(HistogramTest, PercentileOrderingIsSane) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("pct");  // Default latency grid.
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  double p50 = h.Percentile(0.5);
  double p90 = h.Percentile(0.9);
  double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, h.bounds().back());
}

TEST(HistogramTest, ConcurrentObservesUnderThreadPool) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("conc", {10.0, 100.0, 1000.0});
  ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(kIters,
                   [&](size_t i) { h.Observe(static_cast<double>(i % 50)); },
                   /*grain=*/16);
  EXPECT_EQ(h.Count(), kIters);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 49.0);
}

TEST(HistogramTest, FirstRegistrationBoundsWin) {
  MetricsRegistry registry;
  Histogram& a = registry.GetHistogram("bounds", {1.0, 2.0});
  Histogram& b = registry.GetHistogram("bounds", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Gauge& g = registry.GetGauge("g");
  Histogram& h = registry.GetHistogram("h", {10.0});
  c.Add(5);
  g.Set(1.5);
  h.Observe(3.0);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), std::numeric_limits<double>::infinity());
  // Same instrument objects still answer for the names.
  EXPECT_EQ(&registry.GetCounter("c"), &c);
}

TEST(MetricsRegistryTest, DisabledUpdatesAreDropped) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("gated");
  Histogram& h = registry.GetHistogram("gated_h", {10.0});
  MetricsRegistry::set_enabled(false);
  c.Add(100);
  h.Observe(1.0);
  MetricsRegistry::set_enabled(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsRegistryTest, JsonExportContainsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("chain.blocks").Add(3);
  registry.GetGauge("fl.acc").Set(0.75);
  Histogram& h = registry.GetHistogram("lat_us", {10.0, 100.0});
  h.Observe(5.0);
  h.Observe(50.0);
  std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"chain.blocks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fl.acc\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistryTest, EmptyHistogramExportOmitsMinMax) {
  MetricsRegistry registry;
  registry.GetHistogram("never_hit", {1.0});
  std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("\"never_hit\""), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ScopedLatencyTest, RecordsOneObservation) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("scoped_us");
  { ScopedLatency latency(h); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Max(), 0.0);
}

TEST(ExporterTest, WritesBothArtifacts) {
  MetricsRegistry registry;
  registry.GetCounter("x").Add(2);
  Tracer tracer;
  { ScopedSpan span(tracer, "phase", "test"); }
  ExportPaths paths;
  paths.metrics_json = "test_metrics_out.json";
  paths.trace_json = "test_trace_out.json";
  Status st = ExportTo(registry, tracer, paths);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::ifstream metrics(paths.metrics_json);
  ASSERT_TRUE(metrics.good());
  std::stringstream m;
  m << metrics.rdbuf();
  EXPECT_NE(m.str().find("\"x\":2"), std::string::npos);

  std::ifstream trace(paths.trace_json);
  ASSERT_TRUE(trace.good());
  std::stringstream t;
  t << trace.rdbuf();
  EXPECT_NE(t.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.str().find("\"phase\""), std::string::npos);

  std::remove(paths.metrics_json.c_str());
  std::remove(paths.trace_json.c_str());
}

TEST(ExporterTest, UnwritablePathFails) {
  MetricsRegistry registry;
  Tracer tracer;
  ExportPaths paths;
  paths.metrics_json = "/nonexistent-dir/metrics.json";
  Status st = ExportTo(registry, tracer, paths);
  EXPECT_FALSE(st.ok());
}

TEST(GlobalRegistryTest, IsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace bcfl::obs
