#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/coordinator.h"
#include "fault/fault_plan.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"

namespace bcfl::obs {
namespace {

/// Minimal HTTP/1.1 client for the tests: one request, read to close.
std::string HttpGet(uint16_t port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(PrometheusNameTest, SanitisesAndPrefixes) {
  EXPECT_EQ(PrometheusName("fl.round_us"), "bcfl_fl_round_us");
  EXPECT_EQ(PrometheusName("span.chain.block commit-us"),
            "bcfl_span_chain_block_commit_us");
  EXPECT_EQ(PrometheusName("ok:name_09"), "bcfl_ok:name_09");
}

TEST(PrometheusTextTest, GoldenCounterAndGauge) {
  MetricsRegistry registry;
  registry.GetCounter("chain.txs").Add(42);
  registry.GetGauge("fl.round_accuracy").Set(0.5);
  EXPECT_EQ(PrometheusText(registry),
            "# TYPE bcfl_chain_txs counter\n"
            "bcfl_chain_txs 42\n"
            "# TYPE bcfl_fl_round_accuracy gauge\n"
            "bcfl_fl_round_accuracy 0.5\n");
}

TEST(PrometheusTextTest, HistogramCumulativeBucketsAndQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat_us", {1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 50.0, 500.0}) h.Observe(v);
  const std::string text = PrometheusText(registry);

  EXPECT_NE(text.find("# TYPE bcfl_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_sum 555.5\n"), std::string::npos);
  EXPECT_NE(text.find("bcfl_lat_us_count 4\n"), std::string::npos);

  // The quantile gauges must agree with the snapshot's estimates.
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hs = snapshot.histograms[0];
  for (const auto& [label, expected] :
       std::vector<std::pair<std::string, double>>{
           {"0.5", hs.p50}, {"0.9", hs.p90}, {"0.99", hs.p99}}) {
    const std::string needle = "bcfl_lat_us_quantile{q=\"" + label + "\"} ";
    const size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos) << text;
    EXPECT_DOUBLE_EQ(std::strtod(text.c_str() + at + needle.size(), nullptr),
                     expected);
  }
}

TEST(PrometheusTextTest, EmptyHistogramAndNonFiniteGauge) {
  MetricsRegistry registry;
  registry.GetHistogram("empty_us", {1.0, 2.0});
  registry.GetGauge("poisoned").Set(
      std::numeric_limits<double>::quiet_NaN());
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("bcfl_poisoned NaN\n"), std::string::npos);
  EXPECT_NE(text.find("bcfl_empty_us_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("bcfl_empty_us_quantile{q=\"0.5\"} 0\n"),
            std::string::npos);
}

TEST(HttpExporterTest, ServesMetricsAndHealthz) {
  MetricsRegistry registry;
  registry.GetCounter("served.requests").Add(7);
  HttpExporter exporter(&registry);
  ASSERT_TRUE(exporter.Start(0).ok());
  ASSERT_TRUE(exporter.running());
  ASSERT_GT(exporter.port(), 0);

  const std::string health = HttpGet(exporter.port(), "GET /healthz HTTP/1.1");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics =
      HttpGet(exporter.port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(metrics.find("bcfl_served_requests 7"), std::string::npos);

  EXPECT_NE(HttpGet(exporter.port(), "GET /nope HTTP/1.1")
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  EXPECT_NE(HttpGet(exporter.port(), "POST /metrics HTTP/1.1")
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);

  EXPECT_GE(exporter.requests_served(), 4u);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // Idempotent.
}

TEST(HttpExporterTest, PortInUseReportsAndLeavesExporterStopped) {
  MetricsRegistry registry;
  HttpExporter first(&registry);
  ASSERT_TRUE(first.Start(0).ok());
  HttpExporter second(&registry);
  const Status st = second.Start(first.port());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("bind"), std::string::npos) << st.ToString();
  EXPECT_FALSE(second.running());
  // The failed exporter must still be startable on a free port.
  ASSERT_TRUE(second.Start(0).ok());
  EXPECT_NE(second.port(), first.port());
}

// The acceptance scenario: scrapes racing a full faulted protocol round
// must always see a complete, parseable exposition (the snapshot path),
// never a torn one, and the session itself must stay unperturbed.
TEST(HttpExporterTest, ConcurrentScrapeDuringChaosRound) {
  HttpExporter exporter;  // Global registry: the session records into it.
  ASSERT_TRUE(exporter.Start(0).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> good_scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::string response =
            HttpGet(exporter.port(), "GET /metrics HTTP/1.1");
        if (response.find("HTTP/1.1 200 OK") != std::string::npos &&
            response.find("bcfl_") != std::string::npos) {
          good_scrapes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  core::BcflConfig config;
  config.num_owners = 5;
  config.num_miners = 3;
  config.rounds = 2;
  config.num_groups = 2;
  config.digits.num_instances = 400;
  auto plan = fault::FaultPlan::Parse("crash owner 2 @0; slow miner 0 @1 "
                                      "+2000us");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = *plan;
  auto coordinator = core::BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  auto result = (*coordinator)->Run();

  stop.store(true, std::memory_order_release);
  for (auto& scraper : scrapers) scraper.join();
  exporter.Stop();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->round_accuracies.size(), 2u);
  EXPECT_GT(good_scrapes.load(), 0u);
}

}  // namespace
}  // namespace bcfl::obs
