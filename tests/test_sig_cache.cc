#include "chain/sig_cache.h"

#include <gtest/gtest.h>

#include "chain/contract_host.h"
#include "chain/state.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace bcfl::chain {
namespace {

/// Minimal contract: "put" stores the payload under the nonce.
class PutContract : public SmartContract {
 public:
  std::string name() const override { return "put"; }
  Status Execute(const Transaction& tx, ContractState* state) override {
    state->Put("put/" + std::to_string(tx.nonce), tx.payload);
    return Status::OK();
  }
};

Transaction SignedTx(const crypto::Schnorr& scheme,
                     const crypto::SchnorrKeyPair& key, uint64_t nonce,
                     Xoshiro256* rng) {
  Transaction tx;
  tx.contract = "put";
  tx.method = "put";
  tx.payload = Bytes(48, static_cast<uint8_t>(nonce));
  tx.nonce = nonce;
  tx.Sign(scheme, key, rng);
  return tx;
}

TEST(SigVerifyCacheTest, InsertContainsClear) {
  SigVerifyCache cache;
  crypto::Digest a{};
  a[0] = 1;
  crypto::Digest b{};
  b[0] = 2;
  EXPECT_FALSE(cache.Contains(a));
  cache.Insert(a);
  EXPECT_TRUE(cache.Contains(a));
  EXPECT_FALSE(cache.Contains(b));
  EXPECT_EQ(cache.Size(), 1u);
  cache.Insert(a);  // Idempotent.
  EXPECT_EQ(cache.Size(), 1u);
  cache.Clear();
  EXPECT_FALSE(cache.Contains(a));
  EXPECT_EQ(cache.Size(), 0u);
}

class SigCacheHostTest : public ::testing::Test {
 protected:
  SigCacheHostTest() {
    host_ = std::make_shared<ContractHost>();
    EXPECT_TRUE(host_->Register(std::make_shared<PutContract>()).ok());
  }

  std::shared_ptr<ContractHost> host_;
  Xoshiro256 rng_{2024};
};

TEST_F(SigCacheHostTest, SuccessfulVerifiesAreCachedAcrossReExecution) {
  auto key = host_->scheme().GenerateKeyPair(&rng_);
  std::vector<Transaction> txs;
  for (uint64_t i = 0; i < 5; ++i) {
    txs.push_back(SignedTx(host_->scheme(), key, i, &rng_));
  }
  ContractState s1;
  auto r1 = host_->ExecuteBlock(txs, &s1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(host_->sig_cache().Size(), txs.size());

  // Re-execution (a second miner validating the same block) must yield
  // identical receipts and state without growing the cache.
  ContractState s2;
  auto r2 = host_->ExecuteBlock(txs, &s2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].success, (*r2)[i].success);
    EXPECT_EQ((*r1)[i].tx_hash, (*r2)[i].tx_hash);
  }
  EXPECT_EQ(s1.StateRoot(), s2.StateRoot());
  EXPECT_EQ(host_->sig_cache().Size(), txs.size());
}

TEST_F(SigCacheHostTest, InvalidSignatureIsNeverCached) {
  auto key = host_->scheme().GenerateKeyPair(&rng_);
  Transaction tx = SignedTx(host_->scheme(), key, 7, &rng_);
  tx.signature.s = tx.signature.s.Add(crypto::UInt256(1));
  ContractState state;
  for (int round = 0; round < 2; ++round) {
    auto receipt = host_->ExecuteTransaction(tx, &state);
    ASSERT_TRUE(receipt.ok());
    EXPECT_FALSE(receipt->success);
    EXPECT_EQ(receipt->error, "invalid signature");
  }
  EXPECT_EQ(host_->sig_cache().Size(), 0u);
}

TEST_F(SigCacheHostTest, TamperedTransactionMissesTheCache) {
  auto key = host_->scheme().GenerateKeyPair(&rng_);
  Transaction tx = SignedTx(host_->scheme(), key, 9, &rng_);
  ContractState state;
  auto good = host_->ExecuteTransaction(tx, &state);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->success);
  EXPECT_EQ(host_->sig_cache().Size(), 1u);

  // Flipping a payload byte changes the tx hash, so the cached verdict
  // cannot be replayed onto the tampered bytes (fail-closed).
  Transaction tampered = tx;
  tampered.payload[0] ^= 0xff;
  auto bad = host_->ExecuteTransaction(tampered, &state);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->success);
  EXPECT_EQ(bad->error, "invalid signature");
  EXPECT_EQ(host_->sig_cache().Size(), 1u);
}

TEST_F(SigCacheHostTest, PreVerifyWithPoolMatchesInline) {
  auto key_a = host_->scheme().GenerateKeyPair(&rng_);
  auto key_b = host_->scheme().GenerateKeyPair(&rng_);
  std::vector<Transaction> txs;
  for (uint64_t i = 0; i < 12; ++i) {
    txs.push_back(
        SignedTx(host_->scheme(), i % 2 == 0 ? key_a : key_b, i, &rng_));
  }
  txs[3].signature.r = crypto::UInt256(0);  // One invalid tx.

  // Inline baseline.
  ContractState s_inline;
  auto r_inline = host_->ExecuteBlock(txs, &s_inline);
  ASSERT_TRUE(r_inline.ok());

  // Fresh host, pooled pre-verification.
  auto pooled_host = std::make_shared<ContractHost>();
  ASSERT_TRUE(pooled_host->Register(std::make_shared<PutContract>()).ok());
  ThreadPool pool(4);
  SetChainPool(&pool);
  pooled_host->PreVerifySignatures(txs);
  EXPECT_EQ(pooled_host->sig_cache().Size(), txs.size() - 1);
  ContractState s_pooled;
  auto r_pooled = pooled_host->ExecuteBlock(txs, &s_pooled);
  SetChainPool(nullptr);
  ASSERT_TRUE(r_pooled.ok());

  ASSERT_EQ(r_inline->size(), r_pooled->size());
  for (size_t i = 0; i < r_inline->size(); ++i) {
    EXPECT_EQ((*r_inline)[i].success, (*r_pooled)[i].success);
    EXPECT_EQ((*r_inline)[i].error, (*r_pooled)[i].error);
  }
  EXPECT_EQ(s_inline.StateRoot(), s_pooled.StateRoot());
  EXPECT_FALSE((*r_pooled)[3].success);
}

}  // namespace
}  // namespace bcfl::chain
