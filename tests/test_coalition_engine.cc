#include "shapley/coalition_engine.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "data/digits.h"
#include "shapley/shapley_math.h"

namespace bcfl::shapley {
namespace {

ml::Dataset SmallTestSet() {
  data::DigitsConfig config;
  config.num_instances = 200;
  config.seed = 17;
  return data::DigitsGenerator(config).Generate();
}

std::vector<ml::Matrix> RandomModels(size_t m, size_t rows, size_t cols,
                                     uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<ml::Matrix> models;
  models.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    models.push_back(ml::Matrix::Gaussian(rows, cols, 0.3, &rng));
  }
  return models;
}

/// Scores a model by a fixed deterministic functional of its entries —
/// generic (non-linear-score) utility for exercising the weight-space
/// path.
class FrobeniusUtility : public UtilityFunction {
 public:
  Result<double> Evaluate(const ml::Matrix& weights) override {
    return weights.FrobeniusNorm() + 0.25 * weights.At(0, 0);
  }
};

/// Utility that fails on every coalition containing the poisoned value.
class FailingUtility : public UtilityFunction {
 public:
  Result<double> Evaluate(const ml::Matrix& weights) override {
    if (weights.At(0, 0) > 0.5) {
      return Status::Internal("poisoned model");
    }
    return weights.At(0, 0);
  }
};

/// The seed implementation: rebuild each coalition from scratch.
Result<double> NaiveCoalitionUtility(const std::vector<ml::Matrix>& models,
                                     uint64_t mask, UtilityFunction* u) {
  ml::Matrix coalition(models[0].rows(), models[0].cols());
  size_t count = 0;
  for (size_t j = 0; j < models.size(); ++j) {
    if (mask & (1ULL << j)) {
      BCFL_RETURN_IF_ERROR(coalition.AddInPlace(models[j]));
      ++count;
    }
  }
  if (count > 0) coalition.Scale(1.0 / static_cast<double>(count));
  return u->Evaluate(coalition);
}

TEST(CoalitionEngineTest, MatchesNaiveRebuildBitForBit) {
  // Weight-space path: subset-sum DP accumulates members in the same
  // ascending order as the naive rebuild, so the tables are identical.
  auto models = RandomModels(5, 6, 4, 11);
  FrobeniusUtility utility;
  CoalitionEngine engine(&utility);
  auto table = engine.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 32u);
  for (uint64_t mask = 0; mask < 32; ++mask) {
    auto naive = NaiveCoalitionUtility(models, mask, &utility);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ((*table)[mask], *naive) << "mask " << mask;
  }
  EXPECT_FALSE(engine.stats().used_linear_scores);
}

TEST(CoalitionEngineTest, ExactlyTwoToMMinusOneAdditions) {
  FrobeniusUtility utility;
  for (size_t m : {1u, 3u, 6u, 9u}) {
    auto models = RandomModels(m, 4, 3, 100 + m);
    CoalitionEngine engine(&utility);
    ASSERT_TRUE(engine.EvaluateMeanCoalitions(models).ok());
    EXPECT_EQ(engine.stats().matrix_additions, (1ULL << m) - 1)
        << "m = " << m;
    EXPECT_EQ(engine.stats().matrix_subtractions, 0u);
    EXPECT_EQ(engine.stats().utility_evaluations, 1ULL << m);
  }
}

TEST(CoalitionEngineTest, PoolSizeDoesNotChangeUtilityTableOrSv) {
  // Determinism guarantee: 1 worker vs many workers (vs no pool at all)
  // produce bit-identical utility tables and SV vectors.
  const size_t m = 6;
  ml::Dataset data = SmallTestSet();
  auto models = RandomModels(m, data.num_features() + 1, 10, 21);
  TestAccuracyUtility utility(data);

  CoalitionEngine serial(&utility);
  auto serial_table = serial.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(serial_table.ok());

  for (size_t threads : {1u, 4u, 7u}) {
    ThreadPool pool(threads);
    CoalitionEngineConfig config;
    config.pool = &pool;
    CoalitionEngine parallel(&utility, config);
    auto parallel_table = parallel.EvaluateMeanCoalitions(models);
    ASSERT_TRUE(parallel_table.ok());
    ASSERT_EQ(parallel_table->size(), serial_table->size());
    for (size_t i = 0; i < serial_table->size(); ++i) {
      EXPECT_EQ((*parallel_table)[i], (*serial_table)[i])
          << "threads " << threads << " mask " << i;
    }
    auto serial_sv = ExactShapleyFromTable(m, *serial_table);
    auto parallel_sv = ExactShapleyFromTable(m, *parallel_table);
    ASSERT_TRUE(serial_sv.ok());
    ASSERT_TRUE(parallel_sv.ok());
    for (size_t i = 0; i < m; ++i) {
      EXPECT_EQ((*serial_sv)[i], (*parallel_sv)[i]);
    }
  }
}

TEST(CoalitionEngineTest, LinearScorePathAgreesWithWeightPath) {
  // TestAccuracyUtility takes the score-sum fast path; forcing the
  // generic path through a caching wrapper (which hides the capability)
  // must give the same accuracies up to FP-reassociation argmax ties.
  const size_t m = 5;
  ml::Dataset data = SmallTestSet();
  auto models = RandomModels(m, data.num_features() + 1, 10, 33);
  TestAccuracyUtility linear_utility(data);
  CachingUtility generic_utility(
      std::make_unique<TestAccuracyUtility>(data));

  CoalitionEngine linear_engine(&linear_utility);
  CoalitionEngine generic_engine(&generic_utility);
  auto linear_table = linear_engine.EvaluateMeanCoalitions(models);
  auto generic_table = generic_engine.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(linear_table.ok());
  ASSERT_TRUE(generic_table.ok());
  EXPECT_TRUE(linear_engine.stats().used_linear_scores);
  EXPECT_FALSE(generic_engine.stats().used_linear_scores);
  const double tie_tolerance =
      2.0 / static_cast<double>(data.num_examples());
  for (size_t i = 0; i < linear_table->size(); ++i) {
    EXPECT_NEAR((*linear_table)[i], (*generic_table)[i], tie_tolerance)
        << "mask " << i;
  }
}

TEST(CoalitionEngineTest, GrayCodeFallbackMatchesSubsetSum) {
  const size_t m = 6;
  ml::Dataset data = SmallTestSet();
  auto models = RandomModels(m, data.num_features() + 1, 10, 5);
  TestAccuracyUtility utility(data);

  CoalitionEngine table_engine(&utility);
  auto dp = table_engine.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(dp.ok());
  ASSERT_FALSE(table_engine.stats().used_gray_code);

  CoalitionEngineConfig tight;
  tight.max_table_bytes = 1;  // Force the O(1)-memory path.
  CoalitionEngine gray_engine(&utility, tight);
  auto gray = gray_engine.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(gray.ok());
  EXPECT_TRUE(gray_engine.stats().used_gray_code);
  // One add or sub per step over 2^m - 1 Gray transitions.
  EXPECT_EQ(gray_engine.stats().matrix_additions +
                gray_engine.stats().matrix_subtractions,
            (1ULL << m) - 1);
  const double tie_tolerance =
      2.0 / static_cast<double>(data.num_examples());
  for (size_t i = 0; i < dp->size(); ++i) {
    EXPECT_NEAR((*gray)[i], (*dp)[i], tie_tolerance) << "mask " << i;
  }
}

TEST(CoalitionEngineTest, PropagatesUtilityErrors) {
  std::vector<ml::Matrix> models = {ml::Matrix(1, 1, 0.1),
                                    ml::Matrix(1, 1, 2.0)};
  FailingUtility utility;
  CoalitionEngine serial(&utility);
  EXPECT_FALSE(serial.EvaluateMeanCoalitions(models).ok());

  ThreadPool pool(3);
  CoalitionEngineConfig config;
  config.pool = &pool;
  CoalitionEngine parallel(&utility, config);
  EXPECT_FALSE(parallel.EvaluateMeanCoalitions(models).ok());
}

TEST(CoalitionEngineTest, RejectsDegenerateInput) {
  FrobeniusUtility utility;
  CoalitionEngine engine(&utility);
  EXPECT_FALSE(engine.EvaluateMeanCoalitions({}).ok());
  std::vector<ml::Matrix> mismatched = {ml::Matrix(2, 2), ml::Matrix(3, 2)};
  EXPECT_FALSE(engine.EvaluateMeanCoalitions(mismatched).ok());
  EXPECT_FALSE(engine.EvaluateModelTable({}).ok());
}

TEST(CoalitionEngineTest, ModelTableParallelMatchesSerial) {
  ml::Dataset data = SmallTestSet();
  TestAccuracyUtility utility(data);
  auto models = RandomModels(16, data.num_features() + 1, 10, 77);

  CoalitionEngine serial(&utility);
  auto serial_table = serial.EvaluateModelTable(models);
  ASSERT_TRUE(serial_table.ok());

  ThreadPool pool(4);
  CoalitionEngineConfig config;
  config.pool = &pool;
  CoalitionEngine parallel(&utility, config);
  auto parallel_table = parallel.EvaluateModelTable(models);
  ASSERT_TRUE(parallel_table.ok());
  for (size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ((*serial_table)[i], (*parallel_table)[i]);
  }
}

TEST(CoalitionAccumulatorTest, IncrementalScanMatchesEngineTable) {
  const size_t m = 4;
  ml::Dataset data = SmallTestSet();
  auto models = RandomModels(m, data.num_features() + 1, 10, 55);
  TestAccuracyUtility utility(data);

  CoalitionEngine engine(&utility);
  auto table = engine.EvaluateMeanCoalitions(models);
  ASSERT_TRUE(table.ok());

  auto acc = CoalitionAccumulator::Make(&models, &utility);
  ASSERT_TRUE(acc.ok());
  // Grow a coalition in ascending order: every prefix must agree with
  // the engine's table entry for the same mask (identical add order).
  EXPECT_EQ(acc->Evaluate().value(), (*table)[0]);
  uint64_t mask = 0;
  for (size_t j = 0; j < m; ++j) {
    ASSERT_TRUE(acc->Include(j).ok());
    mask |= 1ULL << j;
    EXPECT_EQ(acc->mask(), mask);
    EXPECT_EQ(acc->Evaluate().value(), (*table)[mask]) << "mask " << mask;
  }
  // Reset returns to the empty coalition.
  acc->Reset();
  EXPECT_EQ(acc->count(), 0u);
  EXPECT_EQ(acc->Evaluate().value(), (*table)[0]);
}

TEST(CoalitionAccumulatorTest, RejectsDuplicatesAndOutOfRange) {
  auto models = RandomModels(3, 2, 2, 8);
  FrobeniusUtility utility;
  auto acc = CoalitionAccumulator::Make(&models, &utility);
  ASSERT_TRUE(acc.ok());
  EXPECT_TRUE(acc->Include(1).ok());
  EXPECT_FALSE(acc->Include(1).ok());
  EXPECT_FALSE(acc->Include(3).ok());
}

}  // namespace
}  // namespace bcfl::shapley
