#include "ml/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcfl::ml {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0);
  }
  Matrix filled(2, 2, 7.5);
  EXPECT_EQ(filled.At(1, 1), 7.5);
}

TEST(MatrixTest, MatMulHandComputed) {
  Matrix a(2, 3);
  // [1 2 3; 4 5 6]
  a.At(0, 0) = 1; a.At(0, 1) = 2; a.At(0, 2) = 3;
  a.At(1, 0) = 4; a.At(1, 1) = 5; a.At(1, 2) = 6;
  Matrix b(3, 2);
  // [7 8; 9 10; 11 12]
  b.At(0, 0) = 7;  b.At(0, 1) = 8;
  b.At(1, 0) = 9;  b.At(1, 1) = 10;
  b.At(2, 0) = 11; b.At(2, 1) = 12;

  auto c = a.MatMul(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->At(0, 0), 58);
  EXPECT_EQ(c->At(0, 1), 64);
  EXPECT_EQ(c->At(1, 0), 139);
  EXPECT_EQ(c->At(1, 1), 154);
}

TEST(MatrixTest, MatMulShapeMismatch) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_TRUE(a.MatMul(b).status().IsInvalidArgument());
}

TEST(MatrixTest, TransposedMatMulEqualsExplicitTranspose) {
  Xoshiro256 rng(5);
  Matrix a = Matrix::Gaussian(7, 4, 1.0, &rng);
  Matrix b = Matrix::Gaussian(7, 3, 1.0, &rng);
  auto fused = a.TransposedMatMul(b);
  ASSERT_TRUE(fused.ok());
  auto explicit_t = a.Transpose().MatMul(b);
  ASSERT_TRUE(explicit_t.ok());
  ASSERT_EQ(fused->rows(), explicit_t->rows());
  for (size_t i = 0; i < fused->rows(); ++i) {
    for (size_t j = 0; j < fused->cols(); ++j) {
      EXPECT_NEAR(fused->At(i, j), explicit_t->At(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, TransposeInvolution) {
  Xoshiro256 rng(6);
  Matrix m = Matrix::Gaussian(5, 3, 2.0, &rng);
  EXPECT_EQ(m.Transpose().Transpose(), m);
}

TEST(MatrixTest, AddSubScaleAxpy) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  ASSERT_TRUE(a.AddInPlace(b).ok());
  EXPECT_EQ(a.At(0, 0), 3.0);
  ASSERT_TRUE(a.SubInPlace(b).ok());
  EXPECT_EQ(a.At(0, 0), 1.0);
  a.Scale(4.0);
  EXPECT_EQ(a.At(1, 1), 4.0);
  ASSERT_TRUE(a.Axpy(0.5, b).ok());
  EXPECT_EQ(a.At(1, 1), 5.0);

  Matrix wrong(3, 2);
  EXPECT_TRUE(a.AddInPlace(wrong).IsInvalidArgument());
  EXPECT_TRUE(a.SubInPlace(wrong).IsInvalidArgument());
  EXPECT_TRUE(a.Axpy(1.0, wrong).IsInvalidArgument());
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_EQ(Matrix(3, 3).FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, SetZero) {
  Matrix m(2, 2, 9.0);
  m.SetZero();
  EXPECT_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, GaussianStatistics) {
  Xoshiro256 rng(7);
  Matrix m = Matrix::Gaussian(200, 200, 3.0, &rng);
  double sum = 0, sum_sq = 0;
  for (double v : m.data()) {
    sum += v;
    sum_sq += v * v;
  }
  double n = static_cast<double>(m.size());
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(MatrixTest, SerializeRoundTrip) {
  Xoshiro256 rng(8);
  Matrix m = Matrix::Gaussian(4, 6, 1.0, &rng);
  ByteWriter writer;
  m.Serialize(&writer);
  ByteReader reader(writer.buffer());
  auto back = Matrix::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
  EXPECT_TRUE(reader.exhausted());
}

TEST(MatrixTest, DeserializeRejectsHugeShapes) {
  ByteWriter writer;
  writer.WriteU32(1 << 16);
  writer.WriteU32(1 << 16);
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(Matrix::Deserialize(&reader).status().IsCorruption());
}

TEST(MeanOfMatricesTest, ComputesElementwiseMean) {
  Matrix a(1, 2); a.At(0, 0) = 1; a.At(0, 1) = 10;
  Matrix b(1, 2); b.At(0, 0) = 3; b.At(0, 1) = 20;
  auto mean = MeanOfMatrices({a, b});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(mean->At(0, 1), 15.0);
}

TEST(MeanOfMatricesTest, ErrorsOnEmptyOrMismatch) {
  EXPECT_TRUE(MeanOfMatrices({}).status().IsInvalidArgument());
  Matrix a(1, 2), b(2, 1);
  EXPECT_TRUE(MeanOfMatrices({a, b}).status().IsInvalidArgument());
}

TEST(WeightedMeanTest, RespectsWeights) {
  Matrix a(1, 1); a.At(0, 0) = 0.0;
  Matrix b(1, 1); b.At(0, 0) = 10.0;
  auto mean = WeightedMeanOfMatrices({a, b}, {1.0, 3.0});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ(mean->At(0, 0), 7.5);
}

TEST(WeightedMeanTest, ErrorsOnBadWeights) {
  Matrix a(1, 1);
  EXPECT_TRUE(
      WeightedMeanOfMatrices({a}, {0.0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      WeightedMeanOfMatrices({a}, {-1.0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      WeightedMeanOfMatrices({a}, {1.0, 2.0}).status().IsInvalidArgument());
}

TEST(WeightedMeanTest, UniformWeightsMatchPlainMean) {
  Xoshiro256 rng(9);
  std::vector<Matrix> ms;
  for (int i = 0; i < 4; ++i) ms.push_back(Matrix::Gaussian(3, 3, 1.0, &rng));
  auto plain = MeanOfMatrices(ms);
  auto weighted = WeightedMeanOfMatrices(ms, {2, 2, 2, 2});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(weighted.ok());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_NEAR(plain->data()[i], weighted->data()[i], 1e-12);
  }
}

}  // namespace
}  // namespace bcfl::ml
