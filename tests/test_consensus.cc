#include "chain/consensus.h"

#include <gtest/gtest.h>

namespace bcfl::chain {
namespace {

/// Counter contract: method "inc" bumps a per-sender counter.
class CounterContract : public SmartContract {
 public:
  std::string name() const override { return "counter"; }
  Status Execute(const Transaction& tx, ContractState* state) override {
    if (tx.method != "inc") return Status::Unimplemented(tx.method);
    std::string key = "count/" + tx.sender.ToHex();
    uint64_t value = 0;
    auto existing = state->Get(key);
    if (existing.ok()) {
      ByteReader reader(*existing);
      BCFL_ASSIGN_OR_RETURN(value, reader.ReadU64());
    }
    ByteWriter writer;
    writer.WriteU64(value + 1);
    state->Put(key, writer.Take());
    return Status::OK();
  }
};

class ConsensusFixture : public ::testing::Test {
 protected:
  ConsensusFixture() {
    host_ = std::make_shared<ContractHost>(scheme_);
    EXPECT_TRUE(host_->Register(std::make_shared<CounterContract>()).ok());
  }

  std::unique_ptr<ConsensusEngine> MakeEngine(size_t miners) {
    ConsensusConfig config;
    config.leader_seed = 7;
    return std::make_unique<ConsensusEngine>(miners, host_, config);
  }

  Transaction IncTx(uint64_t nonce) {
    Transaction tx;
    tx.contract = "counter";
    tx.method = "inc";
    tx.nonce = nonce;
    tx.Sign(scheme_, key_, &rng_);
    return tx;
  }

  crypto::Schnorr scheme_;
  Xoshiro256 rng_{3};
  crypto::SchnorrKeyPair key_ = scheme_.GenerateKeyPair(&rng_);
  std::shared_ptr<ContractHost> host_;
};

TEST_F(ConsensusFixture, HonestMinersCommitUnanimously) {
  auto engine = MakeEngine(5);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->accept_votes, 5u);
  EXPECT_EQ(result->reject_votes, 0u);
  EXPECT_EQ(result->height, 1u);
  EXPECT_EQ(result->num_txs, 1u);
  EXPECT_EQ(result->retries_used, 0u);
}

TEST_F(ConsensusFixture, AllReplicasConverge) {
  auto engine = MakeEngine(4);
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(engine->SubmitTransaction(IncTx(i)).ok());
  }
  auto results = engine->RunUntilDrained();
  ASSERT_TRUE(results.ok());
  crypto::Digest root = engine->miner(0).state().StateRoot();
  for (size_t m = 1; m < 4; ++m) {
    EXPECT_EQ(engine->miner(m).state().StateRoot(), root);
    EXPECT_EQ(engine->miner(m).chain().Height(),
              engine->miner(0).chain().Height());
    EXPECT_TRUE(engine->miner(m).mempool().empty());
  }
}

TEST_F(ConsensusFixture, DuplicateTransactionsAreDeduplicated) {
  auto engine = MakeEngine(3);
  Transaction tx = IncTx(1);
  ASSERT_TRUE(engine->SubmitTransaction(tx).ok());
  ASSERT_TRUE(engine->SubmitTransaction(tx).ok());  // Gossip echo.
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_txs, 1u);
}

TEST_F(ConsensusFixture, ByzantineLeaderIsRejectedThenRotatedPast) {
  auto engine = MakeEngine(5);
  // Corrupt every miner that could become leader first with a tamper
  // hook on miner of the first-scheduled leader only.
  ConsensusConfig config;
  config.leader_seed = 7;
  LeaderSchedule schedule({0, 1, 2, 3, 4}, config.leader_seed);
  uint32_t first_leader = *schedule.LeaderFor(1, 0);

  MinerBehavior evil;
  evil.tamper_state = [](ContractState* state) {
    state->Put("forged", {0xde, 0xad});
  };
  engine->miner(first_leader).set_behavior(evil);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  // The fraudulent proposal was rejected; a later leader committed.
  EXPECT_GT(result->retries_used, 0u);
  EXPECT_NE(result->leader, first_leader);
  // The forged key never reached any replica.
  for (size_t m = 0; m < 5; ++m) {
    EXPECT_FALSE(engine->miner(m).state().Has("forged"));
  }
}

TEST_F(ConsensusFixture, MinorityGriefersCannotBlockProgress) {
  auto engine = MakeEngine(5);
  MinerBehavior reject;
  reject.always_reject = true;
  engine->miner(3).set_behavior(reject);
  engine->miner(4).set_behavior(reject);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  // 3 accepts (including an honest leader) > 5/2 — commits eventually.
  EXPECT_TRUE(result->committed);
}

TEST_F(ConsensusFixture, MajorityGriefersHaltConsensus) {
  auto engine = MakeEngine(5);
  MinerBehavior reject;
  reject.always_reject = true;
  for (size_t m = 1; m < 5; ++m) engine->miner(m).set_behavior(reject);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_EQ(engine->miner(0).chain().Height(), 0u);
}

TEST_F(ConsensusFixture, BadSignatureTxCommitsAsFailedReceiptDeterministically) {
  // A transaction with an invalid signature still enters a block; every
  // replica marks it failed identically, so consensus is unaffected.
  auto engine = MakeEngine(3);
  Transaction bad = IncTx(1);
  bad.payload = {9};  // Breaks the signature.
  ASSERT_TRUE(engine->SubmitTransaction(bad).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  // No counter key was created anywhere.
  EXPECT_EQ(engine->miner(0).state().size(), 0u);
}

TEST_F(ConsensusFixture, RunUntilDrainedCommitsEverything) {
  auto engine = MakeEngine(3);
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(engine->SubmitTransaction(IncTx(i)).ok());
  }
  auto results = engine->RunUntilDrained();
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(engine->CanonicalChain().TotalTransactions(), 10u);
  // All 10 increments landed.
  auto counter =
      engine->CanonicalState().Get("count/" + key_.public_key.ToHex());
  ASSERT_TRUE(counter.ok());
  ByteReader reader(*counter);
  EXPECT_EQ(*reader.ReadU64(), 10u);
}

TEST_F(ConsensusFixture, MaxTxsPerBlockSplitsBatches) {
  ConsensusConfig config;
  config.leader_seed = 7;
  config.max_txs_per_block = 2;
  ConsensusEngine engine(3, host_, config);
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(engine.SubmitTransaction(IncTx(i)).ok());
  }
  auto results = engine.RunUntilDrained();
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 3u);  // 2 + 2 + 1.
  EXPECT_EQ(engine.CanonicalChain().TotalTransactions(), 5u);
}

TEST_F(ConsensusFixture, NetworkTrafficIsGenerated) {
  auto engine = MakeEngine(4);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  ASSERT_TRUE(engine->RunRound().ok());
  // 3 proposal messages + 3 votes.
  EXPECT_EQ(engine->network().stats().messages_sent, 6u);
}

TEST_F(ConsensusFixture, LossyNetworkEventuallyCommits) {
  // 20% message loss: proposals or votes can vanish, failing individual
  // attempts, but retries with fresh leaders make progress.
  ConsensusConfig config;
  config.leader_seed = 7;
  config.max_retries = 30;
  config.network.drop_probability = 0.2;
  config.network.seed = 123;
  ConsensusEngine engine(5, host_, config);
  ASSERT_TRUE(engine.SubmitTransaction(IncTx(1)).ok());
  auto result = engine.RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  // All replicas still converge.
  crypto::Digest root = engine.miner(0).state().StateRoot();
  for (size_t m = 1; m < 5; ++m) {
    EXPECT_EQ(engine.miner(m).state().StateRoot(), root);
  }
}

TEST_F(ConsensusFixture, TotalMessageLossExhaustsRetries) {
  ConsensusConfig config;
  config.leader_seed = 7;
  config.max_retries = 3;
  config.network.drop_probability = 1.0;  // Nothing ever arrives.
  ConsensusEngine engine(5, host_, config);
  ASSERT_TRUE(engine.SubmitTransaction(IncTx(1)).ok());
  auto result = engine.RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_EQ(engine.miner(0).chain().Height(), 0u);
}

TEST_F(ConsensusFixture, SingleMinerCommitsAlone) {
  // Degenerate but valid: one miner is its own majority.
  auto engine = MakeEngine(1);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->accept_votes, 1u);
}

TEST_F(ConsensusFixture, ViewChangeRotatesPastCrashedLeader) {
  auto engine = MakeEngine(5);
  LeaderSchedule schedule({0, 1, 2, 3, 4}, 7);
  uint32_t first_leader = *schedule.LeaderFor(1, 0);

  auto plan = fault::FaultPlan::Parse(
      "crash miner " + std::to_string(first_leader) + " @0");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(*plan, 0, 5);
  injector.BeginRound(0);
  engine->set_fault_injector(&injector);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  uint64_t clock_before = engine->network().clock().NowMicros();
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_NE(result->leader, first_leader);
  EXPECT_GT(result->retries_used, 0u);
  // The view change burned simulated (never wall-clock) time.
  EXPECT_GT(engine->network().clock().NowMicros() - clock_before, 50'000u);
  // The crashed miner saw nothing; the four live replicas committed.
  EXPECT_EQ(engine->miner(first_leader).chain().Height(), 0u);
  for (uint32_t m = 0; m < 5; ++m) {
    if (m == first_leader) continue;
    EXPECT_EQ(engine->miner(m).chain().Height(), 1u);
  }
  engine->set_fault_injector(nullptr);
}

TEST_F(ConsensusFixture, DuplicatedVotesCountEachMinerOnce) {
  // Every miner duplicates its traffic: proposals arrive twice (so
  // validators vote twice) and each vote is delivered twice. The tally
  // must still count five distinct voters, not nine messages.
  auto engine = MakeEngine(5);
  auto plan = fault::FaultPlan::Parse(
      "duplicate miner 0 @0; duplicate miner 1 @0; duplicate miner 2 @0; "
      "duplicate miner 3 @0; duplicate miner 4 @0");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(*plan, 0, 5);
  injector.BeginRound(0);
  engine->set_fault_injector(&injector);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->accept_votes, 5u);
  engine->set_fault_injector(nullptr);
}

TEST_F(ConsensusFixture, DuplicatedVoteCannotForgeMajority) {
  // Only two of five miners are online and one duplicates its outbound
  // vote. A doubled accept must not be mistaken for a third voter: two
  // distinct accepts (leader + one validator) are not a strict majority
  // of the full roster, so nothing may commit.
  auto engine = MakeEngine(5);
  auto plan = fault::FaultPlan::Parse(
      "crash miner 2 @0; crash miner 3 @0; crash miner 4 @0; "
      "duplicate miner 0 @0; duplicate miner 1 @0");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(*plan, 0, 5);
  injector.BeginRound(0);
  engine->set_fault_injector(&injector);

  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_LE(result->accept_votes, 2u);
  for (uint32_t m = 0; m < 5; ++m) {
    EXPECT_EQ(engine->miner(m).chain().Height(), 0u) << "miner " << m;
  }
  engine->set_fault_injector(nullptr);
}

TEST_F(ConsensusFixture, RecoveredMinerIsReadmittedByCatchUp) {
  auto engine = MakeEngine(5);
  auto plan =
      fault::FaultPlan::Parse("crash miner 4 @0; recover miner 4 @1");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(*plan, 0, 5);
  engine->set_fault_injector(&injector);

  // Two blocks commit while miner 4 is down.
  injector.BeginRound(0);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  ASSERT_TRUE(engine->RunRound().ok());
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(2)).ok());
  ASSERT_TRUE(engine->RunRound().ok());
  EXPECT_EQ(engine->miner(4).chain().Height(), 0u);
  EXPECT_EQ(engine->CanonicalChain().Height(), 2u);

  // Back online: the next round first replays the canonical blocks into
  // the laggard, then it participates in the new height normally.
  injector.BeginRound(1);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(3)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(engine->miner(4).chain().Height(), 3u);
  crypto::Digest root = engine->miner(0).state().StateRoot();
  for (size_t m = 1; m < 5; ++m) {
    EXPECT_EQ(engine->miner(m).state().StateRoot(), root) << "miner " << m;
  }
  engine->set_fault_injector(nullptr);
}

TEST_F(ConsensusFixture, MinorityPartitionCellFallsBehindThenCatchesUp) {
  auto engine = MakeEngine(5);
  auto plan = fault::FaultPlan::Parse("partition miners 3,4 @0");
  ASSERT_TRUE(plan.ok());
  fault::FaultInjector injector(*plan, 0, 5);
  engine->set_fault_injector(&injector);

  injector.BeginRound(0);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(1)).ok());
  auto result = engine->RunRound();
  ASSERT_TRUE(result.ok());
  // The majority side (3 of 5) commits without the isolated cell.
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(engine->miner(3).chain().Height(), 0u);
  EXPECT_EQ(engine->miner(4).chain().Height(), 0u);
  EXPECT_EQ(engine->CanonicalChain().Height(), 1u);

  // Partition heals at round 1: the cell is caught up with the next round.
  injector.BeginRound(1);
  ASSERT_TRUE(engine->SubmitTransaction(IncTx(2)).ok());
  ASSERT_TRUE(engine->RunRound().ok());
  for (size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(engine->miner(m).chain().Height(), 2u) << "miner " << m;
  }
  engine->set_fault_injector(nullptr);
}

TEST(LeaderScheduleTest, DeterministicAndInRange) {
  LeaderSchedule schedule({10, 20, 30}, 42);
  for (uint64_t h = 1; h <= 20; ++h) {
    auto leader = schedule.LeaderFor(h);
    ASSERT_TRUE(leader.ok());
    EXPECT_TRUE(*leader == 10 || *leader == 20 || *leader == 30);
    EXPECT_EQ(*leader, *schedule.LeaderFor(h));
  }
  EXPECT_TRUE(schedule.LeaderFor(0).status().IsInvalidArgument());
}

TEST(LeaderScheduleTest, RetriesRotateLeaders) {
  LeaderSchedule schedule({0, 1, 2, 3, 4}, 9);
  // Over several retries at one height, more than one leader appears.
  std::set<uint32_t> leaders;
  for (uint32_t r = 0; r < 5; ++r) leaders.insert(*schedule.LeaderFor(1, r));
  EXPECT_GT(leaders.size(), 1u);
}

TEST(LeaderScheduleTest, EmptyMinerSetFails) {
  LeaderSchedule schedule({}, 1);
  EXPECT_TRUE(schedule.LeaderFor(1).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace bcfl::chain
