#include <gtest/gtest.h>

#include "chain/contract_host.h"
#include "chain/state.h"

namespace bcfl::chain {
namespace {

TEST(ContractStateTest, PutGetDelete) {
  ContractState state;
  EXPECT_FALSE(state.Has("k"));
  EXPECT_TRUE(state.Get("k").status().IsNotFound());
  state.Put("k", {1, 2});
  EXPECT_TRUE(state.Has("k"));
  EXPECT_EQ(*state.Get("k"), (Bytes{1, 2}));
  state.Put("k", {3});
  EXPECT_EQ(*state.Get("k"), (Bytes{3}));
  state.Delete("k");
  EXPECT_FALSE(state.Has("k"));
  EXPECT_EQ(state.size(), 0u);
}

TEST(ContractStateTest, PrefixScanIsSortedAndBounded) {
  ContractState state;
  state.Put("update/00000001/a", {});
  state.Put("update/00000001/b", {});
  state.Put("update/00000002/a", {});
  state.Put("other", {});
  auto keys = state.KeysWithPrefix("update/00000001/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "update/00000001/a");
  EXPECT_EQ(keys[1], "update/00000001/b");
  EXPECT_EQ(state.KeysWithPrefix("missing/").size(), 0u);
  EXPECT_EQ(state.KeysWithPrefix("").size(), 4u);
}

TEST(ContractStateTest, StateRootDeterministicAndOrderInsensitive) {
  ContractState a, b;
  a.Put("x", {1});
  a.Put("y", {2});
  b.Put("y", {2});
  b.Put("x", {1});
  EXPECT_EQ(a.StateRoot(), b.StateRoot());
}

TEST(ContractStateTest, StateRootSensitiveToContent) {
  ContractState a, b;
  a.Put("x", {1});
  b.Put("x", {2});
  EXPECT_NE(a.StateRoot(), b.StateRoot());
  ContractState c;
  c.Put("y", {1});
  EXPECT_NE(a.StateRoot(), c.StateRoot());
}

TEST(ContractStateTest, KeyValueBoundaryIsUnambiguous) {
  // ("ab", "c") must hash differently from ("a", "bc").
  ContractState a, b;
  a.Put("ab", {'c'});
  b.Put("a", {'b', 'c'});
  EXPECT_NE(a.StateRoot(), b.StateRoot());
}

TEST(ContractStateTest, SnapshotIsolation) {
  ContractState state;
  state.Put("k", {1});
  ContractState snap = state.Snapshot();
  snap.Put("k", {2});
  snap.Put("new", {3});
  EXPECT_EQ(*state.Get("k"), (Bytes{1}));
  EXPECT_FALSE(state.Has("new"));
}

/// Test contract: method "put" stores payload under the key in the
/// payload's first half; method "fail" writes then errors (to exercise
/// rollback); anything else is unimplemented.
class EchoContract : public SmartContract {
 public:
  std::string name() const override { return "echo"; }
  Status Execute(const Transaction& tx, ContractState* state) override {
    if (tx.method == "put") {
      state->Put("echo/" + std::to_string(tx.nonce), tx.payload);
      return Status::OK();
    }
    if (tx.method == "fail") {
      state->Put("should_not_persist", {1});
      return Status::Internal("deliberate failure");
    }
    return Status::Unimplemented(tx.method);
  }
};

class HostFixture : public ::testing::Test {
 protected:
  HostFixture() {
    host_ = std::make_unique<ContractHost>(scheme_);
    EXPECT_TRUE(host_->Register(std::make_shared<EchoContract>()).ok());
  }

  Transaction SignedTx(const std::string& contract, const std::string& method,
                       uint64_t nonce = 1) {
    Transaction tx;
    tx.contract = contract;
    tx.method = method;
    tx.payload = {42};
    tx.nonce = nonce;
    tx.Sign(scheme_, key_, &rng_);
    return tx;
  }

  crypto::Schnorr scheme_;
  Xoshiro256 rng_{2};
  crypto::SchnorrKeyPair key_ = scheme_.GenerateKeyPair(&rng_);
  std::unique_ptr<ContractHost> host_;
};

TEST_F(HostFixture, RegisterRejectsDuplicatesAndNull) {
  EXPECT_TRUE(
      host_->Register(std::make_shared<EchoContract>()).IsAlreadyExists());
  EXPECT_TRUE(host_->Register(nullptr).IsInvalidArgument());
  EXPECT_TRUE(host_->HasContract("echo"));
  EXPECT_FALSE(host_->HasContract("nope"));
}

TEST_F(HostFixture, ExecutesValidTransaction) {
  ContractState state;
  auto receipt = host_->ExecuteTransaction(SignedTx("echo", "put", 5), &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->success);
  EXPECT_TRUE(state.Has("echo/5"));
}

TEST_F(HostFixture, RejectsBadSignatureWithoutStateChange) {
  ContractState state;
  Transaction tx = SignedTx("echo", "put");
  tx.payload.push_back(9);  // Invalidate signature.
  auto receipt = host_->ExecuteTransaction(tx, &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_EQ(receipt->error, "invalid signature");
  EXPECT_EQ(state.size(), 0u);
}

TEST_F(HostFixture, RejectsUnknownContract) {
  ContractState state;
  auto receipt =
      host_->ExecuteTransaction(SignedTx("missing", "put"), &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_NE(receipt->error.find("unknown contract"), std::string::npos);
}

TEST_F(HostFixture, FailedExecutionRollsBackPartialWrites) {
  ContractState state;
  state.Put("pre", {1});
  auto receipt = host_->ExecuteTransaction(SignedTx("echo", "fail"), &state);
  ASSERT_TRUE(receipt.ok());
  EXPECT_FALSE(receipt->success);
  EXPECT_FALSE(state.Has("should_not_persist"));
  EXPECT_TRUE(state.Has("pre"));
}

TEST_F(HostFixture, ExecuteBlockMixesSuccessAndFailureDeterministically) {
  ContractState state;
  std::vector<Transaction> txs = {SignedTx("echo", "put", 1),
                                  SignedTx("echo", "fail", 2),
                                  SignedTx("echo", "put", 3)};
  auto receipts = host_->ExecuteBlock(txs, &state);
  ASSERT_TRUE(receipts.ok());
  ASSERT_EQ(receipts->size(), 3u);
  EXPECT_TRUE((*receipts)[0].success);
  EXPECT_FALSE((*receipts)[1].success);
  EXPECT_TRUE((*receipts)[2].success);
  EXPECT_TRUE(state.Has("echo/1"));
  EXPECT_TRUE(state.Has("echo/3"));

  // Re-execution on a fresh state yields the identical root — the
  // property consensus relies on.
  ContractState replay;
  ASSERT_TRUE(host_->ExecuteBlock(txs, &replay).ok());
  EXPECT_EQ(replay.StateRoot(), state.StateRoot());
}

}  // namespace
}  // namespace bcfl::chain
