#include "secureagg/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bcfl::secureagg {
namespace {

TEST(FixedPointTest, RoundTripWithinResolution) {
  FixedPointCodec codec(24);
  const double values[] = {0.0, 1.0, -1.0, 0.5, -0.5, 3.14159, -2.71828,
                           123.456, -123.456, 1e-3, -1e-3};
  for (double v : values) {
    EXPECT_NEAR(codec.Decode(codec.Encode(v)), v, codec.resolution());
  }
}

TEST(FixedPointTest, ZeroIsExact) {
  FixedPointCodec codec(24);
  EXPECT_EQ(codec.Encode(0.0), 0u);
  EXPECT_EQ(codec.Decode(0), 0.0);
}

TEST(FixedPointTest, NegativeValuesUseTwosComplement) {
  FixedPointCodec codec(8);
  uint64_t encoded = codec.Encode(-1.0);
  EXPECT_EQ(encoded, static_cast<uint64_t>(-256));
  EXPECT_DOUBLE_EQ(codec.Decode(encoded), -1.0);
}

class ScaleBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleBitsTest, RoundTripAndSumExactness) {
  FixedPointCodec codec(GetParam());
  Xoshiro256 rng(42);
  std::vector<double> values(100);
  for (auto& v : values) v = rng.NextGaussian(0.0, 5.0);

  // Round-trip error bounded by resolution/2 per element.
  for (double v : values) {
    EXPECT_LE(std::abs(codec.Decode(codec.Encode(v)) - v),
              codec.resolution() / 2 + 1e-15);
  }

  // Ring sum decodes to the sum of the *quantised* values exactly.
  uint64_t ring_sum = 0;
  double quantised_sum = 0;
  for (double v : values) {
    uint64_t e = codec.Encode(v);
    ring_sum += e;
    quantised_sum += codec.Decode(e);
  }
  EXPECT_DOUBLE_EQ(codec.Decode(ring_sum), quantised_sum);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleBitsTest,
                         ::testing::Values(8, 16, 24, 32, 40));

TEST(FixedPointTest, ScaleBitsClamped) {
  EXPECT_EQ(FixedPointCodec(0).scale_bits(), 1);
  EXPECT_EQ(FixedPointCodec(100).scale_bits(), 52);
}

TEST(FixedPointTest, VectorHelpers) {
  FixedPointCodec codec(20);
  std::vector<double> values = {1.5, -2.25, 0.0};
  auto encoded = codec.EncodeVector(values);
  auto decoded = codec.DecodeVector(encoded);
  ASSERT_EQ(decoded.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(decoded[i], values[i], codec.resolution());
  }
}

TEST(FixedPointTest, MatrixRoundTrip) {
  FixedPointCodec codec(24);
  Xoshiro256 rng(7);
  ml::Matrix m = ml::Matrix::Gaussian(5, 4, 1.0, &rng);
  auto ring = codec.EncodeMatrix(m);
  auto back = codec.DecodeMatrix(ring, 5, 4);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(back->data()[i], m.data()[i], codec.resolution());
  }
}

TEST(FixedPointTest, DecodeMatrixRejectsShapeMismatch) {
  FixedPointCodec codec(24);
  EXPECT_FALSE(codec.DecodeMatrix(std::vector<uint64_t>(10), 3, 4).ok());
}

TEST(FixedPointTest, DecodeMeanDividesBySurvivors) {
  FixedPointCodec codec(16);
  std::vector<uint64_t> sum = {codec.Encode(6.0)};
  auto mean = codec.DecodeMean(sum, 3);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR((*mean)[0], 2.0, codec.resolution());
  EXPECT_FALSE(codec.DecodeMean(sum, 0).ok());
}

TEST(RingOpsTest, AddSubInverse) {
  Xoshiro256 rng(9);
  std::vector<uint64_t> a(50), b(50);
  for (auto& v : a) v = rng.Next();
  for (auto& v : b) v = rng.Next();
  auto sum = RingAdd(a, b);
  ASSERT_TRUE(sum.ok());
  auto diff = RingSub(*sum, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, a);
}

TEST(RingOpsTest, WrapAroundIsHarmless) {
  // Adding then subtracting a value that overflows the ring recovers the
  // original — the property masking relies on.
  std::vector<uint64_t> x = {42};
  std::vector<uint64_t> mask = {~0ULL};  // Max uint64.
  auto masked = RingAdd(x, mask);
  ASSERT_TRUE(masked.ok());
  auto unmasked = RingSub(*masked, mask);
  ASSERT_TRUE(unmasked.ok());
  EXPECT_EQ((*unmasked)[0], 42u);
}

TEST(RingOpsTest, SizeMismatchRejected) {
  EXPECT_FALSE(RingAdd(std::vector<uint64_t>(2), std::vector<uint64_t>(3)).ok());
  EXPECT_FALSE(RingSub(std::vector<uint64_t>(2), std::vector<uint64_t>(3)).ok());
}

TEST(FixedPointTest, SumOfManySmallValuesStaysExact) {
  // 10k values of magnitude ~1 at 24 scale bits: far from the 2^63
  // overflow bound; the decoded ring sum equals the quantised sum.
  FixedPointCodec codec(24);
  Xoshiro256 rng(11);
  uint64_t ring_sum = 0;
  double quantised_sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextGaussian(0.0, 1.0);
    uint64_t e = codec.Encode(v);
    ring_sum += e;
    quantised_sum += codec.Decode(e);
  }
  EXPECT_NEAR(codec.Decode(ring_sum), quantised_sum, 1e-9);
}

}  // namespace
}  // namespace bcfl::secureagg
