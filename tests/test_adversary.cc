#include "core/adversary.h"

#include <gtest/gtest.h>

#include "core/coordinator.h"

namespace bcfl::core {
namespace {

BcflConfig SmallConfig() {
  BcflConfig config;
  config.num_owners = 4;
  config.num_miners = 5;
  config.rounds = 1;
  config.num_groups = 2;
  config.seed = 31;
  config.seed_e = 6;
  config.local.epochs = 2;
  config.local.learning_rate = 0.05;
  config.digits.num_instances = 400;
  return config;
}

TEST(AdversaryTest, SvInflationByFraudulentLeaderIsRejected) {
  // Baseline honest run.
  auto honest = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(honest.ok());
  auto honest_result = (*honest)->Run();
  ASSERT_TRUE(honest_result.ok());

  // Identical run but one miner inflates owner 3's contribution by +100
  // whenever it leads. Honest-majority re-execution must reject every
  // fraudulent proposal, leaving the on-chain SVs identical.
  auto attacked = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(attacked.ok());
  ASSERT_TRUE((*attacked)
                  ->InstallMinerBehavior(0, MakeSvInflationBehavior(3, 100.0))
                  .ok());
  auto attacked_result = (*attacked)->Run();
  ASSERT_TRUE(attacked_result.ok());

  EXPECT_EQ(attacked_result->total_sv, honest_result->total_sv);
  EXPECT_LT(attacked_result->total_sv[3], 50.0);
}

TEST(AdversaryTest, SvSuppressionIsRejected) {
  auto honest = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(honest.ok());
  auto honest_result = (*honest)->Run();
  ASSERT_TRUE(honest_result.ok());

  auto attacked = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(attacked.ok());
  ASSERT_TRUE((*attacked)
                  ->InstallMinerBehavior(1, MakeSvSuppressionBehavior(0))
                  .ok());
  auto attacked_result = (*attacked)->Run();
  ASSERT_TRUE(attacked_result.ok());
  EXPECT_EQ(attacked_result->total_sv, honest_result->total_sv);
}

TEST(AdversaryTest, MinorityGriefersDoNotChangeOutcome) {
  auto honest = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(honest.ok());
  auto honest_result = (*honest)->Run();
  ASSERT_TRUE(honest_result.ok());

  auto attacked = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(attacked.ok());
  ASSERT_TRUE(
      (*attacked)->InstallMinerBehavior(3, MakeAlwaysRejectBehavior()).ok());
  ASSERT_TRUE(
      (*attacked)->InstallMinerBehavior(4, MakeAlwaysRejectBehavior()).ok());
  auto attacked_result = (*attacked)->Run();
  ASSERT_TRUE(attacked_result.ok());
  EXPECT_EQ(attacked_result->total_sv, honest_result->total_sv);
}

TEST(AdversaryTest, BogusSlashByFraudulentLeaderIsRejected) {
  // Baseline honest run: nobody misbehaves, nobody is slashed.
  auto honest = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(honest.ok());
  auto honest_result = (*honest)->Run();
  ASSERT_TRUE(honest_result.ok());

  // One leader fabricates a conviction of honest owner 2 (PR 9): it
  // writes the slash/retire/drop records into its proposed state with no
  // verifiable evidence behind them. Honest validators re-execute the
  // block, never produce those records, and reject the proposal — the
  // committed chain keeps owner 2 unslashed with identical results.
  auto attacked = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(attacked.ok());
  ASSERT_TRUE((*attacked)
                  ->InstallMinerBehavior(0, MakeBogusSlashBehavior(2, 0))
                  .ok());
  auto attacked_result = (*attacked)->Run();
  ASSERT_TRUE(attacked_result.ok());

  EXPECT_EQ(attacked_result->total_sv, honest_result->total_sv);
  EXPECT_TRUE(attacked_result->slashed_at.empty());
  EXPECT_TRUE(attacked_result->retired_at.empty());
  auto& engine = (*attacked)->engine();
  EXPECT_FALSE(engine.CanonicalState().Has(keys::Slashed(2)));
  EXPECT_FALSE(engine.CanonicalState().Has(keys::Retired(2)));
  EXPECT_TRUE(engine.CanonicalState().Has(keys::RoundComplete(0)));
}

TEST(AdversaryTest, InstallBehaviorValidatesMinerIndex) {
  auto coordinator = BcflCoordinator::Create(SmallConfig());
  ASSERT_TRUE(coordinator.ok());
  EXPECT_TRUE((*coordinator)
                  ->InstallMinerBehavior(99, MakeAlwaysRejectBehavior())
                  .IsOutOfRange());
}

TEST(AdversaryTest, BehaviorsTamperAsSpecified) {
  // Unit-level checks of the tamper hooks themselves.
  chain::ContractState state;
  ASSERT_TRUE(PutDouble(&state, keys::TotalSv(3), 1.5).ok());

  auto inflate = MakeSvInflationBehavior(3, 10.0);
  ASSERT_TRUE(static_cast<bool>(inflate.tamper_state));
  inflate.tamper_state(&state);
  EXPECT_NEAR(*GetDouble(state, keys::TotalSv(3)), 11.5, 1e-12);

  auto suppress = MakeSvSuppressionBehavior(3);
  suppress.tamper_state(&state);
  EXPECT_NEAR(*GetDouble(state, keys::TotalSv(3)), 0.0, 1e-12);

  auto reject = MakeAlwaysRejectBehavior();
  EXPECT_TRUE(reject.always_reject);
  EXPECT_FALSE(static_cast<bool>(reject.tamper_state));
}

}  // namespace
}  // namespace bcfl::core
