#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace bcfl::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(DigestToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  Digest one_shot = Sha256::Hash(msg);
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(msg.substr(0, split));
    hasher.Update(msg.substr(split));
    EXPECT_EQ(hasher.Finish(), one_shot) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaryLengths) {
  // Lengths around the 64-byte block and the 56-byte padding boundary are
  // the classic off-by-one bug sites.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Digest incremental = [&] {
      Sha256 hasher;
      for (char c : msg) hasher.Update(std::string(1, c));
      return hasher.Finish();
    }();
    EXPECT_EQ(incremental, Sha256::Hash(msg)) << "length " << len;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 hasher;
  hasher.Update("garbage");
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(DigestToHex(hasher.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Hash("a"), Sha256::Hash("b"));
  EXPECT_NE(Sha256::Hash("abc"), Sha256::Hash("abd"));
  // Length-extension-shaped inputs differ too.
  EXPECT_NE(Sha256::Hash("ab"), Sha256::Hash("abc"));
}

TEST(Sha256Test, DigestToBytesPreservesContent) {
  Digest d = Sha256::Hash("abc");
  Bytes b = DigestToBytes(d);
  ASSERT_EQ(b.size(), 32u);
  EXPECT_TRUE(std::equal(b.begin(), b.end(), d.begin()));
}

TEST(Sha256Test, BatchMatchesScalarAcrossLengthsAndCounts) {
  // Lengths straddle the block/padding boundaries (55/56/64) plus the
  // Merkle preimage sizes (33, 65); counts straddle the 8-lane groups.
  for (size_t len : {0u, 1u, 33u, 55u, 56u, 63u, 64u, 65u, 200u}) {
    for (size_t count : {1u, 7u, 8u, 9u, 16u, 21u}) {
      std::vector<Bytes> msgs(count, Bytes(len));
      std::vector<const uint8_t*> ptrs(count);
      for (size_t i = 0; i < count; ++i) {
        for (size_t j = 0; j < len; ++j) {
          msgs[i][j] = static_cast<uint8_t>(i * 131 + j * 7 + len);
        }
        ptrs[i] = msgs[i].data();
      }
      std::vector<Digest> out(count);
      Sha256Batch(ptrs.data(), len, count, out.data());
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(out[i], Sha256::Hash(msgs[i]))
            << "len " << len << " count " << count << " index " << i;
      }
    }
  }
}

TEST(Sha256Test, BatchActivePathIsNamed) {
  std::string_view path = Sha256BatchActivePath();
  EXPECT_TRUE(path == "avx2x8" || path == "scalar") << path;
}

}  // namespace
}  // namespace bcfl::crypto
