#include "core/params.h"

#include <gtest/gtest.h>

namespace bcfl::core {
namespace {

SetupParams ValidParams(uint32_t owners = 3) {
  SetupParams params;
  params.num_owners = owners;
  params.rounds = 5;
  params.num_groups = 2;
  params.seed_e = 77;
  params.fixed_point_bits = 24;
  params.weight_rows = 65;
  params.weight_cols = 10;
  for (uint32_t i = 0; i < owners; ++i) {
    params.schnorr_public_keys.push_back(crypto::UInt256(i + 100));
    params.dh_public_keys.push_back(crypto::UInt256(i + 200));
  }
  return params;
}

TEST(SetupParamsTest, ValidatesGoodParams) {
  EXPECT_TRUE(ValidParams().Validate().ok());
}

TEST(SetupParamsTest, SerializeRoundTrip) {
  SetupParams params = ValidParams(5);
  auto back = SetupParams::Deserialize(params.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_owners, 5u);
  EXPECT_EQ(back->rounds, params.rounds);
  EXPECT_EQ(back->num_groups, params.num_groups);
  EXPECT_EQ(back->seed_e, params.seed_e);
  EXPECT_EQ(back->fixed_point_bits, params.fixed_point_bits);
  EXPECT_EQ(back->weight_rows, params.weight_rows);
  EXPECT_EQ(back->weight_cols, params.weight_cols);
  ASSERT_EQ(back->schnorr_public_keys.size(), 5u);
  EXPECT_EQ(back->schnorr_public_keys[3], crypto::UInt256(103));
  EXPECT_EQ(back->dh_public_keys[4], crypto::UInt256(204));
}

TEST(SetupParamsTest, RejectsTrailingBytes) {
  Bytes wire = ValidParams().Serialize();
  wire.push_back(0);
  EXPECT_TRUE(SetupParams::Deserialize(wire).status().IsCorruption());
}

TEST(SetupParamsTest, RejectsTruncation) {
  Bytes wire = ValidParams().Serialize();
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(SetupParams::Deserialize(wire).ok());
}

TEST(SetupParamsTest, ValidateRejectsBadGroupCount) {
  SetupParams params = ValidParams();
  params.num_groups = 0;
  EXPECT_FALSE(params.Validate().ok());
  params.num_groups = 4;  // > num_owners.
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SetupParamsTest, ValidateRejectsKeyCountMismatch) {
  SetupParams params = ValidParams();
  params.schnorr_public_keys.pop_back();
  EXPECT_FALSE(params.Validate().ok());
  params = ValidParams();
  params.dh_public_keys.push_back(crypto::UInt256(1));
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SetupParamsTest, ValidateRejectsZeroRoundsOrShape) {
  SetupParams params = ValidParams();
  params.rounds = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = ValidParams();
  params.weight_rows = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = ValidParams();
  params.num_owners = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(SetupParamsTest, DeserializeRunsValidation) {
  SetupParams params = ValidParams();
  params.num_groups = 9;  // Invalid: > owners.
  EXPECT_FALSE(SetupParams::Deserialize(params.Serialize()).ok());
}

}  // namespace
}  // namespace bcfl::core
