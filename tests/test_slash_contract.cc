// Contract-level slashing semantics (PR 9): every evidence kind convicts
// exactly when the deterministic re-verification succeeds — a bogus
// accusation against an honest owner always dies inside the contract.

#include <gtest/gtest.h>

#include <algorithm>

#include "chain/contract_host.h"
#include "core/fl_contract.h"
#include "core/slash_contract.h"
#include "crypto/shamir.h"
#include "data/digits.h"
#include "secureagg/fixed_point.h"
#include "secureagg/participant.h"
#include "shapley/group_sv.h"

namespace bcfl::core {
namespace {

class SlashContractTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kOwners = 4;
  static constexpr size_t kThreshold = 3;
  static constexpr double kNormBound = 100.0;

  SlashContractTest() : host_(schnorr_) {
    for (uint32_t i = 0; i < kOwners; ++i) {
      sign_keys_.push_back(schnorr_.GenerateKeyPair(&rng_));
      owners_.push_back(std::make_unique<secureagg::SecureAggParticipant>(
          i, dh_, &rng_, /*use_self_mask=*/false));
    }
    for (auto& p : owners_) {
      for (auto& q : owners_) {
        if (p->id() != q->id()) {
          EXPECT_TRUE(p->RegisterPeer(q->id(), q->public_key()).ok());
        }
      }
    }
    data::DigitsConfig digits;
    digits.num_instances = 400;
    ml::Dataset validation = data::DigitsGenerator(digits).Generate();
    auto fl = std::make_shared<FlContract>(validation);
    EXPECT_TRUE(host_.Register(fl).ok());
    EXPECT_TRUE(host_.Register(std::make_shared<SlashContract>(fl)).ok());

    // Every owner's DH key is VSS-shared exactly as the coordinator does
    // it: the dealer's Feldman commitment goes on chain with setup.
    auto scheme =
        crypto::ShamirSecretSharing::Create(kThreshold, kOwners).value();
    SetupParams params;
    params.num_owners = kOwners;
    params.rounds = 2;
    params.num_groups = 2;
    params.seed_e = 5;
    params.weight_rows = 65;
    params.weight_cols = 10;
    params.shamir_threshold = kThreshold;
    params.update_norm_bound = kNormBound;
    for (uint32_t i = 0; i < kOwners; ++i) {
      params.schnorr_public_keys.push_back(sign_keys_[i].public_key);
      params.dh_public_keys.push_back(owners_[i]->public_key());
      crypto::VssCommitment commitment;
      shares_.push_back(scheme.SplitVerifiable(
          owners_[i]->private_key().ToBytes(), &rng_, &commitment));
      params.vss_commitments.push_back(commitment.Serialize());
    }
    chain::Transaction setup;
    setup.contract = "bcfl";
    setup.method = "setup";
    setup.payload = params.Serialize();
    setup.Sign(schnorr_, sign_keys_[0], &rng_);
    EXPECT_TRUE(host_.ExecuteTransaction(setup, &state_)->success);
    params_ = params;
  }

  chain::Transaction BuildSubmit(uint32_t i, uint64_t round, uint64_t nonce,
                                 double scale) {
    auto perm = shapley::PermutationFromSeed(params_.seed_e, round, kOwners);
    auto groups = shapley::GroupUsers(perm, params_.num_groups).value();
    std::vector<secureagg::OwnerId> members;
    for (const auto& group : groups) {
      if (std::find(group.begin(), group.end(), static_cast<size_t>(i)) !=
          group.end()) {
        for (size_t m : group) {
          members.push_back(static_cast<secureagg::OwnerId>(m));
        }
      }
    }
    secureagg::FixedPointCodec codec(24);
    ml::Matrix local = ml::Matrix::Gaussian(65, 10, scale, &rng_);
    auto masked =
        owners_[i]->MaskUpdate(round, members, codec.EncodeMatrix(local));
    EXPECT_TRUE(masked.ok());
    chain::Transaction tx;
    tx.contract = "bcfl";
    tx.method = "submit_update";
    tx.payload = FlContract::EncodeSubmitUpdate(round, i, *masked);
    tx.nonce = nonce;
    tx.Sign(schnorr_, sign_keys_[i], &rng_);
    return tx;
  }

  bool SubmitOwner(uint32_t i, uint64_t round, uint64_t nonce,
                   double scale = 0.3) {
    return host_
        .ExecuteTransaction(BuildSubmit(i, round, nonce, scale), &state_)
        ->success;
  }

  chain::TxReceipt Slash(const Bytes& evidence, uint64_t nonce,
                         uint32_t reporter = 0) {
    chain::Transaction tx;
    tx.contract = "slash";
    tx.method = "slash";
    tx.payload = evidence;
    tx.nonce = nonce;
    tx.Sign(schnorr_, sign_keys_[reporter], &rng_);
    return *host_.ExecuteTransaction(tx, &state_);
  }

  /// Owner `offender`'s share of `dealer`'s key, perturbed in-field — the
  /// minimal forgery a byzantine holder can hand a recovery.
  crypto::ShamirShare ForgedShare(uint32_t offender, uint32_t dealer) {
    crypto::ShamirShare share = shares_[dealer][offender];
    for (uint64_t& value : share.values) {
      value = crypto::ShamirSecretSharing::FieldAdd(value, 1);
    }
    return share;
  }

  crypto::SchnorrSignature SignReveal(uint32_t signer, uint64_t round,
                                      uint32_t dealer,
                                      const crypto::ShamirShare& share) {
    return schnorr_.Sign(sign_keys_[signer],
                         SlashContract::BadShareMessage(round, dealer, share),
                         &rng_);
  }

  Xoshiro256 rng_{99};
  crypto::Schnorr schnorr_;
  crypto::DiffieHellman dh_;
  std::vector<crypto::SchnorrKeyPair> sign_keys_;
  std::vector<std::unique_ptr<secureagg::SecureAggParticipant>> owners_;
  std::vector<std::vector<crypto::ShamirShare>> shares_;
  chain::ContractHost host_;
  chain::ContractState state_;
  SetupParams params_;
};

TEST_F(SlashContractTest, ValidBadShareEvidenceConvictsAndCompletesRound) {
  // Round 0 as the coordinator sees a bad-share round: owner 3 crashes
  // (never submits), the others submit, and during owner 3's recovery
  // owner 1 reveals a forged share of owner 2's key and is accused.
  const uint32_t offender = 1, dealer = 2, crashed = 3;
  for (uint32_t i = 0; i < kOwners; ++i) {
    if (i == crashed) continue;
    ASSERT_TRUE(SubmitOwner(i, 0, i + 1));
  }
  crypto::ShamirShare forged = ForgedShare(offender, dealer);
  const Bytes evidence = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, forged,
      SignReveal(offender, 0, dealer, forged));
  auto receipt = Slash(evidence, 50);
  EXPECT_TRUE(receipt.success) << receipt.error;

  // Conviction == crash semantics: update struck, dropped-with-key,
  // permanently retired, slash recorded. The round stays open until the
  // crashed owner's recovery lands, exactly like a two-crash round.
  EXPECT_FALSE(state_.Has(keys::Update(0, offender)));
  EXPECT_TRUE(state_.Has(keys::Dropped(0, offender)));
  EXPECT_TRUE(state_.Has(keys::Retired(offender)));
  EXPECT_TRUE(state_.Has(keys::Slashed(offender)));
  EXPECT_FALSE(state_.Has(keys::RoundComplete(0)));

  chain::Transaction recover;
  recover.contract = "bcfl";
  recover.method = "recover";
  recover.payload =
      FlContract::EncodeRecover(0, crashed, owners_[crashed]->private_key());
  recover.nonce = 51;
  recover.Sign(schnorr_, sign_keys_[0], &rng_);
  ASSERT_TRUE(host_.ExecuteTransaction(recover, &state_)->success);

  // Completed over the two survivors; both absentees score zero.
  EXPECT_TRUE(state_.Has(keys::RoundComplete(0)));
  auto sv = GetDouble(state_, keys::RoundSv(0, offender));
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*sv, 0.0);
  auto crashed_sv = GetDouble(state_, keys::RoundSv(0, crashed));
  ASSERT_TRUE(crashed_sv.ok());
  EXPECT_EQ(*crashed_sv, 0.0);
}

TEST_F(SlashContractTest, HonestShareMakesBadShareAccusationBogus) {
  // The genuine share verifies against the dealer's commitment, so the
  // accusation dies — an honest holder cannot be framed with its own
  // honest reveal.
  const uint32_t offender = 1, dealer = 2;
  const crypto::ShamirShare honest = shares_[dealer][offender];
  const Bytes evidence = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, honest,
      SignReveal(offender, 0, dealer, honest));
  auto receipt = Slash(evidence, 50);
  EXPECT_FALSE(receipt.success);
  EXPECT_FALSE(state_.Has(keys::Slashed(offender)));
  EXPECT_FALSE(state_.Has(keys::Retired(offender)));
}

TEST_F(SlashContractTest, UnsignedOrMisattributedBadShareIsRejected) {
  const uint32_t offender = 1, dealer = 2;
  crypto::ShamirShare forged = ForgedShare(offender, dealer);
  // Signed by someone other than the claimed offender: framing attempt.
  const Bytes framed = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, forged,
      SignReveal(/*signer=*/3, 0, dealer, forged));
  EXPECT_FALSE(Slash(framed, 50).success);
  // Share in someone else's slot cannot convict this offender.
  crypto::ShamirShare other_slot = ForgedShare(/*offender=*/3, dealer);
  const Bytes wrong_slot = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, other_slot,
      SignReveal(offender, 0, dealer, other_slot));
  EXPECT_FALSE(Slash(wrong_slot, 51).success);
  // A wrong revealed key fails the g^x == pub check.
  const Bytes wrong_key = SlashContract::EncodeBadShare(
      0, offender, crypto::UInt256(777), dealer, forged,
      SignReveal(offender, 0, dealer, forged));
  EXPECT_FALSE(Slash(wrong_key, 52).success);
  EXPECT_FALSE(state_.Has(keys::Slashed(offender)));
}

TEST_F(SlashContractTest, EquivocationEvidenceConvicts) {
  const uint32_t offender = 2;
  chain::Transaction first = BuildSubmit(offender, 0, 10, 0.3);
  chain::Transaction second = first;
  second.payload.back() ^= 1;
  second.Sign(schnorr_, sign_keys_[offender], &rng_);
  const Bytes evidence = SlashContract::EncodeEquivocation(
      0, offender, owners_[offender]->private_key(), first, second);
  auto receipt = Slash(evidence, 50);
  EXPECT_TRUE(receipt.success) << receipt.error;
  EXPECT_TRUE(state_.Has(keys::Slashed(offender)));
  EXPECT_TRUE(state_.Has(keys::Retired(offender)));
}

TEST_F(SlashContractTest, EquivocationRequiresTwoConflictingSignedTxs) {
  const uint32_t offender = 2;
  chain::Transaction first = BuildSubmit(offender, 0, 10, 0.3);
  // Identical payloads: no equivocation.
  EXPECT_FALSE(Slash(SlashContract::EncodeEquivocation(
                         0, offender, owners_[offender]->private_key(), first,
                         first),
                     50)
                   .success);
  // A second tx whose signature does not verify.
  chain::Transaction tampered = first;
  tampered.payload.back() ^= 1;  // Signed bytes changed, signature stale.
  EXPECT_FALSE(Slash(SlashContract::EncodeEquivocation(
                         0, offender, owners_[offender]->private_key(), first,
                         tampered),
                     51)
                   .success);
  // A conflicting pair signed by a *different* owner cannot convict.
  chain::Transaction other = BuildSubmit(3, 0, 11, 0.3);
  chain::Transaction other2 = other;
  other2.payload.back() ^= 1;
  other2.Sign(schnorr_, sign_keys_[3], &rng_);
  EXPECT_FALSE(Slash(SlashContract::EncodeEquivocation(
                         0, offender, owners_[offender]->private_key(), other,
                         other2),
                     52)
                   .success);
  EXPECT_FALSE(state_.Has(keys::Slashed(offender)));
}

TEST_F(SlashContractTest, NormViolationConvictsOversizedUpdateOnly) {
  // Owner 3 submits a poisoned (hugely scaled) update; owner 0 an honest
  // one. The contract unmasks each with the revealed key and measures.
  ASSERT_TRUE(SubmitOwner(0, 0, 1, /*scale=*/0.3));
  ASSERT_TRUE(SubmitOwner(3, 0, 2, /*scale=*/50.0));

  // Accusing the honest owner is bogus: its unmasked norm is far under
  // the bound.
  auto bogus = Slash(
      SlashContract::EncodeNormViolation(0, 0, owners_[0]->private_key()),
      50);
  EXPECT_FALSE(bogus.success);
  EXPECT_FALSE(state_.Has(keys::Slashed(0)));
  EXPECT_TRUE(state_.Has(keys::Update(0, 0)));

  // The poisoned submitter is convicted.
  auto receipt = Slash(
      SlashContract::EncodeNormViolation(0, 3, owners_[3]->private_key()),
      51);
  EXPECT_TRUE(receipt.success) << receipt.error;
  EXPECT_TRUE(state_.Has(keys::Slashed(3)));
  EXPECT_FALSE(state_.Has(keys::Update(0, 3)));

  // The measured norms agree with the convictions.
  auto honest_norm = SlashContract::UnmaskedUpdateNorm(
      params_, 0, 0, owners_[0]->private_key(), state_);
  ASSERT_TRUE(honest_norm.ok());
  EXPECT_LT(*honest_norm, kNormBound);
}

TEST_F(SlashContractTest, DoubleSlashAndRetiredOwnerAreRejected) {
  const uint32_t offender = 1, dealer = 2;
  crypto::ShamirShare forged = ForgedShare(offender, dealer);
  const Bytes evidence = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, forged,
      SignReveal(offender, 0, dealer, forged));
  ASSERT_TRUE(Slash(evidence, 50).success);
  // Slashing twice is idempotently refused.
  EXPECT_FALSE(Slash(evidence, 51).success);
}

TEST_F(SlashContractTest, AccusationFromUnregisteredSenderIsRejected) {
  const uint32_t offender = 1, dealer = 2;
  crypto::ShamirShare forged = ForgedShare(offender, dealer);
  const Bytes evidence = SlashContract::EncodeBadShare(
      0, offender, owners_[offender]->private_key(), dealer, forged,
      SignReveal(offender, 0, dealer, forged));
  chain::Transaction tx;
  tx.contract = "slash";
  tx.method = "slash";
  tx.payload = evidence;
  tx.nonce = 50;
  auto stranger = schnorr_.GenerateKeyPair(&rng_);
  tx.Sign(schnorr_, stranger, &rng_);
  EXPECT_FALSE(host_.ExecuteTransaction(tx, &state_)->success);
  EXPECT_FALSE(state_.Has(keys::Slashed(offender)));
}

}  // namespace
}  // namespace bcfl::core
