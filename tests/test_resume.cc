#include <gtest/gtest.h>

#include <filesystem>

#include "core/coordinator.h"
#include "fault/fault_plan.h"

namespace bcfl::core {
namespace {

/// Kill/restart recovery (PR 10): a coordinator killed mid-session by a
/// `kill @R` fault and resumed from its state dir must finish with results
/// bit-identical to the same session run uninterrupted — SV trajectories,
/// global weights, chain tip, counters.
class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bcfl_resume_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string StateDir(const std::string& name) const {
    return (dir_ / name).string();
  }

  BcflConfig SmallConfig(RoundEngineMode mode, const std::string& plan) {
    BcflConfig config;
    config.num_owners = 4;
    config.num_miners = 3;
    config.rounds = 4;
    config.num_groups = 2;
    config.seed = 21;
    config.seed_e = 5;
    config.local.epochs = 1;
    config.digits.num_instances = 300;
    config.round_engine = mode;
    if (!plan.empty()) {
      auto parsed = fault::FaultPlan::Parse(plan);
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      config.fault_plan = *parsed;
    }
    return config;
  }

  /// Runs the session to completion with every kill disarmed — the
  /// uninterrupted baseline the resumed run must match bit for bit.
  BcflRunResult Baseline(const BcflConfig& config) {
    auto coordinator = BcflCoordinator::Create(config);
    EXPECT_TRUE(coordinator.ok()) << coordinator.status().ToString();
    if (auto* injector = (*coordinator)->fault_injector(); injector) {
      injector->DisarmAllKills();
    }
    auto result = (*coordinator)->Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  void ExpectBitIdentical(const BcflRunResult& a, const BcflRunResult& b) {
    EXPECT_EQ(a.per_round_sv, b.per_round_sv);
    EXPECT_EQ(a.total_sv, b.total_sv);
    EXPECT_EQ(a.round_accuracies, b.round_accuracies);
    EXPECT_TRUE(a.global_weights == b.global_weights);
    EXPECT_EQ(a.blocks_committed, b.blocks_committed);
    EXPECT_EQ(a.total_transactions, b.total_transactions);
    EXPECT_EQ(a.recover_transactions, b.recover_transactions);
    EXPECT_EQ(a.submission_retries, b.submission_retries);
    EXPECT_EQ(a.slash_transactions, b.slash_transactions);
    EXPECT_EQ(a.retired_at, b.retired_at);
    EXPECT_EQ(a.slashed_at, b.slashed_at);
  }

  /// Kill at `plan`'s round, then resume from the state dir; returns the
  /// resumed run's result and checks the kill actually fired.
  BcflRunResult KillAndResume(const BcflConfig& config,
                              const std::string& state_dir,
                              uint64_t expect_killed_round,
                              uint64_t checkpoint_every = 1) {
    PersistenceOptions persist;
    persist.state_dir = state_dir;
    persist.checkpoint_every = checkpoint_every;
    {
      auto coordinator = BcflCoordinator::Create(config);
      EXPECT_TRUE(coordinator.ok()) << coordinator.status().ToString();
      EXPECT_TRUE((*coordinator)->AttachPersistence(persist).ok());
      // No kill handler installed: Run() surfaces FailedPrecondition
      // instead of exiting the test process.
      auto killed = (*coordinator)->Run();
      EXPECT_TRUE(killed.status().IsFailedPrecondition())
          << killed.status().ToString();
      EXPECT_TRUE((*coordinator)->was_killed());
      EXPECT_EQ((*coordinator)->killed_round(), expect_killed_round);
    }
    persist.resume = true;
    auto coordinator = BcflCoordinator::Create(config);
    EXPECT_TRUE(coordinator.ok()) << coordinator.status().ToString();
    Status attached = (*coordinator)->AttachPersistence(persist);
    EXPECT_TRUE(attached.ok()) << attached.ToString();
    EXPECT_LE((*coordinator)->start_round(), expect_killed_round);
    EXPECT_EQ((*coordinator)->restored_sv_history().size(),
              (*coordinator)->start_round());
    auto result = (*coordinator)->Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  std::filesystem::path dir_;
};

TEST_F(ResumeTest, SerialKillMidSessionResumesBitIdentical) {
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "kill @2");
  BcflRunResult baseline = Baseline(config);
  BcflRunResult resumed = KillAndResume(config, StateDir("serial"), 2);
  ExpectBitIdentical(baseline, resumed);
}

TEST_F(ResumeTest, ParallelKillMidSessionResumesBitIdentical) {
  BcflConfig config = SmallConfig(RoundEngineMode::kParallel, "kill @2");
  config.pool_threads = 3;
  BcflRunResult baseline = Baseline(config);
  BcflRunResult resumed = KillAndResume(config, StateDir("parallel"), 2);
  ExpectBitIdentical(baseline, resumed);
}

TEST_F(ResumeTest, KillAtRoundZeroResumesFromInitialCheckpoint) {
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "kill @0");
  BcflRunResult baseline = Baseline(config);
  BcflRunResult resumed = KillAndResume(config, StateDir("r0"), 0);
  ExpectBitIdentical(baseline, resumed);
}

TEST_F(ResumeTest, SparseCheckpointsReplayTheGap) {
  // kill @3 with a checkpoint every 2 rounds: the resume restarts at round
  // 2 and re-executes rounds 2 and 3 from the replayed chain.
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "kill @3");
  BcflRunResult baseline = Baseline(config);
  BcflRunResult resumed =
      KillAndResume(config, StateDir("sparse"), 3, /*checkpoint_every=*/2);
  ExpectBitIdentical(baseline, resumed);
}

TEST_F(ResumeTest, ResumeSurvivesFaultsBesidesTheKill) {
  // A dropout-recovery round before the kill: the retired roster and the
  // recover counters must survive the restart.
  BcflConfig config =
      SmallConfig(RoundEngineMode::kParallel, "crash owner 3 @1; kill @2");
  BcflRunResult baseline = Baseline(config);
  BcflRunResult resumed = KillAndResume(config, StateDir("faults"), 2);
  EXPECT_FALSE(resumed.retired_at.empty());
  ExpectBitIdentical(baseline, resumed);
}

TEST_F(ResumeTest, FreshAttachRefusesUsedStateDir) {
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "kill @2");
  PersistenceOptions persist;
  persist.state_dir = StateDir("used");
  {
    auto coordinator = BcflCoordinator::Create(config);
    ASSERT_TRUE(coordinator.ok());
    ASSERT_TRUE((*coordinator)->AttachPersistence(persist).ok());
    (void)(*coordinator)->Run();  // Dies at the kill, leaving state behind.
  }
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  EXPECT_TRUE((*coordinator)
                  ->AttachPersistence(persist)
                  .IsFailedPrecondition());
}

TEST_F(ResumeTest, ResumeRefusesDifferentConfig) {
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "kill @2");
  PersistenceOptions persist;
  persist.state_dir = StateDir("fingerprint");
  {
    auto coordinator = BcflCoordinator::Create(config);
    ASSERT_TRUE(coordinator.ok());
    ASSERT_TRUE((*coordinator)->AttachPersistence(persist).ok());
    (void)(*coordinator)->Run();
  }
  BcflConfig other = config;
  other.seed = 22;  // Different data, keys and partitions.
  persist.resume = true;
  auto coordinator = BcflCoordinator::Create(other);
  ASSERT_TRUE(coordinator.ok());
  EXPECT_TRUE((*coordinator)
                  ->AttachPersistence(persist)
                  .IsFailedPrecondition());
}

TEST_F(ResumeTest, ResumeOnEmptyStateDirIsNotFound) {
  BcflConfig config = SmallConfig(RoundEngineMode::kSerial, "");
  PersistenceOptions persist;
  persist.state_dir = StateDir("empty");
  persist.resume = true;
  auto coordinator = BcflCoordinator::Create(config);
  ASSERT_TRUE(coordinator.ok());
  EXPECT_TRUE((*coordinator)->AttachPersistence(persist).IsNotFound());
}

}  // namespace
}  // namespace bcfl::core
