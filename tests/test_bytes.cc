#include "common/bytes.h"

#include <gtest/gtest.h>

namespace bcfl {
namespace {

TEST(HexTest, EncodesLowercase) {
  Bytes data = {0x00, 0xff, 0x0a, 0xb7};
  EXPECT_EQ(ToHex(data), "00ff0ab7");
}

TEST(HexTest, EmptyRoundTrip) {
  EXPECT_EQ(ToHex(Bytes{}), "");
  auto decoded = FromHex("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(HexTest, DecodesMixedCase) {
  auto decoded = FromHex("DeadBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_TRUE(FromHex("abc").status().IsInvalidArgument());
}

TEST(HexTest, RejectsNonHexCharacters) {
  EXPECT_TRUE(FromHex("zz").status().IsInvalidArgument());
}

TEST(ByteWriterTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0x1234);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteDouble(3.14159);

  ByteReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU8(), 0xab);
  EXPECT_EQ(*reader.ReadU16(), 0x1234);
  EXPECT_EQ(*reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(*reader.ReadDouble(), 3.14159);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriterTest, DoubleRoundTripIsExact) {
  const double values[] = {0.0, -0.0, 1e-300, -1e300, 0.1,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  for (double v : values) {
    ByteWriter writer;
    writer.WriteDouble(v);
    ByteReader reader(writer.buffer());
    auto back = reader.ReadDouble();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(std::memcmp(&v, &*back, sizeof(double)), 0);
  }
}

TEST(ByteWriterTest, LengthPrefixedRoundTrip) {
  ByteWriter writer;
  writer.WriteBytes(Bytes{1, 2, 3});
  writer.WriteString("hello");
  writer.WriteDoubleVector({1.5, -2.5});
  writer.WriteU64Vector({7, 8, 9});

  ByteReader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadDoubleVector(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(*reader.ReadU64Vector(), (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriterTest, EmptyContainersRoundTrip) {
  ByteWriter writer;
  writer.WriteBytes(Bytes{});
  writer.WriteString("");
  writer.WriteDoubleVector({});
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadBytes()->empty());
  EXPECT_TRUE(reader.ReadString()->empty());
  EXPECT_TRUE(reader.ReadDoubleVector()->empty());
}

TEST(ByteReaderTest, TruncatedScalarIsCorruption) {
  Bytes data = {0x01, 0x02};
  ByteReader reader(data);
  EXPECT_TRUE(reader.ReadU32().status().IsCorruption());
}

TEST(ByteReaderTest, TruncatedLengthPrefixedIsCorruption) {
  // Claims 100 bytes but provides 2.
  ByteWriter writer;
  writer.WriteU32(100);
  writer.WriteU16(0);
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadBytes().status().IsCorruption());
}

TEST(ByteReaderTest, HugeVectorLengthIsRejectedNotAllocated) {
  ByteWriter writer;
  writer.WriteU32(0xffffffffu);  // Absurd element count, no payload.
  ByteReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadDoubleVector().status().IsCorruption());
  ByteReader reader2(writer.buffer());
  EXPECT_TRUE(reader2.ReadU64Vector().status().IsCorruption());
}

TEST(ByteReaderTest, RemainingAndExhausted) {
  ByteWriter writer;
  writer.WriteU32(5);
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_FALSE(reader.exhausted());
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteReaderTest, ReadRawExactBytes) {
  Bytes data = {9, 8, 7, 6};
  ByteReader reader(data);
  auto first = reader.ReadRaw(2);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, (Bytes{9, 8}));
  EXPECT_TRUE(reader.ReadRaw(3).status().IsCorruption());
}

}  // namespace
}  // namespace bcfl
