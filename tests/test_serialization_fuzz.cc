// Property tests: every deserializer must treat arbitrary corrupted or
// random bytes as data, never as a crash — miners parse payloads from
// untrusted peers.

#include <gtest/gtest.h>

#include <array>
#include <utility>

#include "chain/block.h"
#include "chain/transaction.h"
#include "common/rng.h"
#include "core/params.h"
#include "ml/matrix.h"

namespace bcfl {
namespace {

chain::Transaction MakeTx(Xoshiro256* rng) {
  crypto::Schnorr scheme;
  auto key = scheme.GenerateKeyPair(rng);
  chain::Transaction tx;
  tx.contract = "bcfl";
  tx.method = "submit_update";
  tx.payload = Bytes(64, 0x5a);
  tx.nonce = rng->Next();
  tx.Sign(scheme, key, rng);
  return tx;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomBytesNeverCrashDeserializers) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.NextBounded(300);
    Bytes junk(len);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    // Any outcome is fine as long as it is a Status, not UB.
    (void)chain::Transaction::Deserialize(junk);
    (void)chain::Block::Deserialize(junk);
    (void)core::SetupParams::Deserialize(junk);
    (void)crypto::SchnorrSignature::FromBytes(junk);
    ByteReader reader(junk);
    (void)ml::Matrix::Deserialize(&reader);
  }
  SUCCEED();
}

TEST_P(FuzzTest, BitFlippedTransactionsEitherFailOrVerifyFalse) {
  Xoshiro256 rng(GetParam() + 1000);
  crypto::Schnorr scheme;
  chain::Transaction tx = MakeTx(&rng);
  Bytes wire = tx.Serialize();
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupted = wire;
    size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    auto parsed = chain::Transaction::Deserialize(corrupted);
    if (parsed.ok()) {
      // Structure survived; the signature must not (the flipped byte is
      // covered either by the signing bytes or the signature itself).
      EXPECT_FALSE(parsed->VerifySignature(scheme))
          << "byte " << pos << " flip silently verified";
    }
  }
}

TEST_P(FuzzTest, TruncatedBlocksAlwaysRejected) {
  Xoshiro256 rng(GetParam() + 2000);
  chain::Block block;
  block.header.height = 5;
  for (int i = 0; i < 3; ++i) block.txs.push_back(MakeTx(&rng));
  block.header.merkle_root = block.ComputeMerkleRoot();
  Bytes wire = block.Serialize();
  for (size_t cut = 0; cut < wire.size(); cut += 17) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(chain::Block::Deserialize(truncated).ok())
        << "accepted a block truncated to " << cut << " bytes";
  }
}

TEST_P(FuzzTest, TruncatedTransactionsAlwaysRejectedAndFullRoundTrips) {
  Xoshiro256 rng(GetParam() + 3000);
  chain::Transaction tx = MakeTx(&rng);
  Bytes wire = tx.Serialize();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(chain::Transaction::Deserialize(truncated).ok())
        << "accepted a transaction truncated to " << cut << " bytes";
  }
  auto full = chain::Transaction::Deserialize(wire);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->Hash(), tx.Hash());
}

TEST_P(FuzzTest, OversizedTransactionLengthPrefixesAreRejected) {
  Xoshiro256 rng(GetParam() + 4000);
  chain::Transaction tx = MakeTx(&rng);
  Bytes wire = tx.Serialize();
  // Offsets of every u32 length prefix in the wire format: contract,
  // method, payload, sender, then (past the u64 nonce) the signature.
  std::vector<size_t> prefixes;
  size_t off = 0;
  prefixes.push_back(off);
  off += 4 + tx.contract.size();
  prefixes.push_back(off);
  off += 4 + tx.method.size();
  prefixes.push_back(off);
  off += 4 + tx.payload.size();
  prefixes.push_back(off);
  off += 4 + tx.sender.ToBytes().size();
  off += 8;  // nonce
  prefixes.push_back(off);
  ASSERT_LT(off + 4, wire.size());
  // A length claiming more bytes than the buffer holds must fail fast in
  // CheckAvailable — never drive a giant allocation or read past the end.
  for (size_t pos : prefixes) {
    for (uint32_t huge :
         {0xffffffffu, 0x7fffffffu, static_cast<uint32_t>(wire.size())}) {
      Bytes corrupted = wire;
      for (size_t i = 0; i < 4; ++i) {
        corrupted[pos + i] = static_cast<uint8_t>(huge >> (8 * i));
      }
      EXPECT_FALSE(chain::Transaction::Deserialize(corrupted).ok())
          << "accepted length " << huge << " at offset " << pos;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 99, 31337));

TEST(MatrixDeserializeFuzz, OverflowingShapeHeaderIsRejected) {
  // rows * cols * 8 wraps around uint64 for these headers; the guard
  // must compare element count against remaining/8, not count*8 against
  // remaining, or the corrupt shape slips through and drives a
  // multi-exabyte allocation.
  const std::array<std::pair<uint32_t, uint32_t>, 4> shapes = {{
      {0x80000000u, 0x80000000u},   // count = 2^62, count*8 wraps to 0.
      {0xffffffffu, 0xffffffffu},   // count near 2^64.
      {0x20000000u, 0x00000100u},   // count = 2^37: no wrap, but huge.
      {0xffffffffu, 0x00000008u},   // count*8 = 2^35 + ...: huge.
  }};
  for (const auto& [rows, cols] : shapes) {
    ByteWriter writer;
    writer.WriteU32(rows);
    writer.WriteU32(cols);
    for (int i = 0; i < 16; ++i) writer.WriteDouble(1.0);  // Tiny payload.
    ByteReader reader(writer.buffer());
    auto parsed = ml::Matrix::Deserialize(&reader);
    EXPECT_FALSE(parsed.ok())
        << "accepted rows=" << rows << " cols=" << cols;
  }
}

}  // namespace
}  // namespace bcfl
