#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "data/digits.h"

namespace bcfl::ml {
namespace {

/// Two well-separated Gaussian blobs -> a linearly separable problem.
Dataset SeparableBlobs(size_t n_per_class, uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix x(2 * n_per_class, 2);
  std::vector<int> y(2 * n_per_class);
  for (size_t i = 0; i < n_per_class; ++i) {
    x.At(i, 0) = rng.NextGaussian(-3.0, 0.5);
    x.At(i, 1) = rng.NextGaussian(-3.0, 0.5);
    y[i] = 0;
    x.At(n_per_class + i, 0) = rng.NextGaussian(3.0, 0.5);
    x.At(n_per_class + i, 1) = rng.NextGaussian(3.0, 0.5);
    y[n_per_class + i] = 1;
  }
  return Dataset(std::move(x), std::move(y), 2);
}

TEST(SoftmaxTest, RowsSumToOneAndAreStable) {
  Matrix logits(2, 3);
  logits.At(0, 0) = 1000.0;  // Would overflow a naive exp.
  logits.At(0, 1) = 1000.0;
  logits.At(0, 2) = 999.0;
  logits.At(1, 0) = -1000.0;
  logits.At(1, 1) = 0.0;
  logits.At(1, 2) = 1.0;
  SoftmaxRowsInPlace(&logits);
  for (size_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(logits.At(i, j), 0.0);
      EXPECT_LE(logits.At(i, j), 1.0);
      sum += logits.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(logits.At(0, 0), logits.At(0, 2));
}

TEST(LogRegTest, ZeroModelPredictsUniform) {
  LogisticRegression model(4, 5);
  Matrix x(1, 4, 1.0);
  auto probs = model.PredictProba(x);
  ASSERT_TRUE(probs.ok());
  for (size_t j = 0; j < 5; ++j) EXPECT_NEAR(probs->At(0, j), 0.2, 1e-12);
}

TEST(LogRegTest, LearnsSeparableProblem) {
  Dataset data = SeparableBlobs(100, 1);
  LogisticRegressionConfig config;
  config.learning_rate = 0.5;
  LogisticRegression model(2, 2, config);
  ASSERT_TRUE(model.TrainEpochs(data, 50).ok());
  auto acc = model.Accuracy(data);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(*acc, 0.98);
}

TEST(LogRegTest, LossDecreasesDuringTraining) {
  Dataset data = SeparableBlobs(50, 2);
  LogisticRegression model(2, 2);
  auto initial_loss = model.LogLoss(data);
  ASSERT_TRUE(initial_loss.ok());
  ASSERT_TRUE(model.TrainEpochs(data, 20).ok());
  auto trained_loss = model.LogLoss(data);
  ASSERT_TRUE(trained_loss.ok());
  EXPECT_LT(*trained_loss, *initial_loss);
}

TEST(LogRegTest, TrainingIsDeterministic) {
  Dataset data = SeparableBlobs(30, 3);
  LogisticRegression m1(2, 2), m2(2, 2);
  ASSERT_TRUE(m1.TrainEpochs(data, 10).ok());
  ASSERT_TRUE(m2.TrainEpochs(data, 10).ok());
  EXPECT_EQ(m1.weights(), m2.weights());
}

TEST(LogRegTest, RejectsMismatchedData) {
  LogisticRegression model(4, 3);
  Dataset wrong_features = SeparableBlobs(10, 4);  // 2 features.
  EXPECT_TRUE(model.Train(wrong_features).IsInvalidArgument());

  Matrix x(2, 4);
  Dataset wrong_classes(x, {0, 1}, 2);  // Model expects 3 classes.
  EXPECT_TRUE(model.Train(wrong_classes).IsInvalidArgument());
}

TEST(LogRegTest, PredictRejectsWrongFeatureCount) {
  LogisticRegression model(4, 3);
  Matrix x(2, 5);
  EXPECT_TRUE(model.PredictProba(x).status().IsInvalidArgument());
}

TEST(LogRegTest, FromWeightsRoundTrip) {
  Dataset data = SeparableBlobs(30, 4);
  LogisticRegression model(2, 2);
  ASSERT_TRUE(model.TrainEpochs(data, 10).ok());
  auto restored = LogisticRegression::FromWeights(model.weights());
  ASSERT_TRUE(restored.ok());
  auto acc1 = model.Accuracy(data);
  auto acc2 = restored->Accuracy(data);
  ASSERT_TRUE(acc1.ok());
  ASSERT_TRUE(acc2.ok());
  EXPECT_EQ(*acc1, *acc2);
}

TEST(LogRegTest, FromWeightsRejectsDegenerateShape) {
  EXPECT_FALSE(LogisticRegression::FromWeights(Matrix(1, 5)).ok());
  EXPECT_FALSE(LogisticRegression::FromWeights(Matrix(5, 1)).ok());
}

TEST(LogRegTest, SetWeightsEnforcesShape) {
  LogisticRegression model(4, 3);
  EXPECT_TRUE(model.SetWeights(Matrix(5, 3)).ok());
  EXPECT_TRUE(model.SetWeights(Matrix(4, 3)).IsInvalidArgument());
}

TEST(LogRegTest, AchievesGoodAccuracyOnSyntheticDigits) {
  data::DigitsConfig config;
  config.num_instances = 1500;
  ml::Dataset digits = data::DigitsGenerator(config).Generate();
  Xoshiro256 rng(5);
  auto split = digits.TrainTestSplit(0.8, &rng);
  ASSERT_TRUE(split.ok());

  LogisticRegressionConfig lr_config;
  lr_config.learning_rate = 0.05;
  LogisticRegression model(64, 10, lr_config);
  ASSERT_TRUE(model.TrainEpochs(split->first, 100).ok());
  auto acc = model.Accuracy(split->second);
  ASSERT_TRUE(acc.ok());
  // The synthetic digits must be learnable well above chance (0.1) for
  // the paper's experiments to be meaningful.
  EXPECT_GT(*acc, 0.85);
}

TEST(LogRegTest, EmptyTrainingSetRejected) {
  LogisticRegression model(2, 2);
  Matrix x(0, 2);
  Dataset empty(x, {}, 2);
  EXPECT_TRUE(model.Train(empty).IsInvalidArgument());
}

}  // namespace
}  // namespace bcfl::ml
