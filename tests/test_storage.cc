#include "chain/storage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bcfl::chain {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bcfl_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  Blockchain MakeChain(size_t blocks, uint64_t nonce_base = 0) {
    Blockchain chain;
    crypto::Schnorr scheme;
    Xoshiro256 rng(7);
    auto key = scheme.GenerateKeyPair(&rng);
    for (size_t b = 0; b < blocks; ++b) {
      Block block;
      block.header.height = chain.Height() + 1;
      block.header.prev_hash = chain.Tip().header.Hash();
      block.header.timestamp_us = (b + 1) * 1000;
      Transaction tx;
      tx.contract = "c";
      tx.method = "m";
      tx.nonce = nonce_base + b;
      tx.Sign(scheme, key, &rng);
      block.txs.push_back(tx);
      block.header.merkle_root = block.ComputeMerkleRoot();
      EXPECT_TRUE(chain.Append(block).ok());
    }
    return chain;
  }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, SaveLoadRoundTrip) {
  Blockchain chain = MakeChain(5);
  ASSERT_TRUE(SaveChain(chain, Path("chain.bin")).ok());
  auto loaded = LoadChain(Path("chain.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Height(), 5u);
  EXPECT_EQ(loaded->Tip().header.Hash(), chain.Tip().header.Hash());
  EXPECT_EQ(loaded->TotalTransactions(), 5u);
}

TEST_F(StorageTest, GenesisOnlyChainRoundTrips) {
  Blockchain chain;
  ASSERT_TRUE(SaveChain(chain, Path("genesis.bin")).ok());
  auto loaded = LoadChain(Path("genesis.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Height(), 0u);
}

TEST_F(StorageTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadChain(Path("nope.bin")).status().IsNotFound());
}

TEST_F(StorageTest, EmptyFileIsCorruption) {
  { std::ofstream touch(Path("empty.bin")); }
  EXPECT_TRUE(LoadChain(Path("empty.bin")).status().IsCorruption());
}

TEST_F(StorageTest, HeaderOnlyFileIsRejected) {
  // Magic + version but no block count: a crash between header and body.
  std::ofstream out(Path("header.bin"), std::ios::binary);
  out.write("BCFL", 4);
  uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.close();
  EXPECT_FALSE(LoadChain(Path("header.bin")).ok());
}

TEST_F(StorageTest, GarbageFileIsCorruption) {
  std::ofstream(Path("garbage.bin")) << "definitely not a chain";
  EXPECT_TRUE(LoadChain(Path("garbage.bin")).status().IsCorruption());
}

TEST_F(StorageTest, TruncatedFileIsRejected) {
  Blockchain chain = MakeChain(3);
  ASSERT_TRUE(SaveChain(chain, Path("full.bin")).ok());
  // Copy all but the last 20 bytes.
  std::ifstream in(Path("full.bin"), std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::ofstream out(Path("trunc.bin"), std::ios::binary);
  out.write(data.data(), static_cast<long>(data.size() - 20));
  out.close();
  EXPECT_FALSE(LoadChain(Path("trunc.bin")).ok());
}

TEST_F(StorageTest, TamperedBlockIsRejected) {
  Blockchain chain = MakeChain(3);
  ASSERT_TRUE(SaveChain(chain, Path("chain.bin")).ok());
  // Flip one byte in the middle of the file.
  std::fstream file(Path("chain.bin"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(200);
  char byte;
  file.seekg(200);
  file.read(&byte, 1);
  byte ^= 0x01;
  file.seekp(200);
  file.write(&byte, 1);
  file.close();
  EXPECT_FALSE(LoadChain(Path("chain.bin")).ok());
}

TEST_F(StorageTest, OverwriteReplacesAtomically) {
  Blockchain small = MakeChain(2);
  Blockchain big = MakeChain(6, /*nonce_base=*/100);
  ASSERT_TRUE(SaveChain(small, Path("chain.bin")).ok());
  ASSERT_TRUE(SaveChain(big, Path("chain.bin")).ok());
  auto loaded = LoadChain(Path("chain.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->Height(), 6u);
  // No stray temp file remains.
  EXPECT_FALSE(std::filesystem::exists(Path("chain.bin.tmp")));
}

TEST_F(StorageTest, UnsupportedVersionIsRejected) {
  Blockchain chain = MakeChain(1);
  ASSERT_TRUE(SaveChain(chain, Path("chain.bin")).ok());
  std::fstream file(Path("chain.bin"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(4);  // Version field follows the 4-byte magic.
  uint32_t bad_version = 99;
  file.write(reinterpret_cast<const char*>(&bad_version), 4);
  file.close();
  EXPECT_TRUE(LoadChain(Path("chain.bin")).status().IsUnimplemented());
}

}  // namespace
}  // namespace bcfl::chain
